package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintPackages(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "good", "doc.go"), "// Package good implements §0.\npackage good\n")
	write(t, filepath.Join(root, "good", "impl.go"), "package good\n")
	write(t, filepath.Join(root, "bad", "impl.go"), "package bad\n")
	// A doc comment only in a test file does not document the package.
	write(t, filepath.Join(root, "testonly", "impl.go"), "package testonly\n")
	write(t, filepath.Join(root, "testonly", "impl_test.go"), "// Package testonly is documented in the wrong place.\npackage testonly\n")
	// Skipped trees never count.
	write(t, filepath.Join(root, "testdata", "ignored.go"), "package ignored\n")
	write(t, filepath.Join(root, ".git", "hook.go"), "package hook\n")

	problems, err := lintPackages(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want exactly the two undocumented packages", problems)
	}
	for i, frag := range []string{"bad", "testonly"} {
		if !strings.Contains(problems[i], frag) {
			t.Fatalf("problems[%d] = %q, want mention of %q", i, problems[i], frag)
		}
	}
}

func TestLintMarkdown(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "DESIGN.md"), "# design\n")
	write(t, filepath.Join(root, "README.md"), strings.Join([]string{
		"[ok](DESIGN.md)",
		"[ok-with-anchor](DESIGN.md#section)",
		"[external](https://example.com/x.md)",
		"[anchor-only](#local)",
		"[broken](MISSING.md)",
	}, "\n"))

	problems := lintMarkdown(filepath.Join(root, "README.md"))
	if len(problems) != 1 || !strings.Contains(problems[0], "MISSING.md") {
		t.Fatalf("problems = %v, want exactly the one broken link", problems)
	}
	if p := lintMarkdown(filepath.Join(root, "NOPE.md")); len(p) != 1 {
		t.Fatalf("missing markdown file not reported: %v", p)
	}
}

// TestRepositoryIsClean runs the linter against the actual repository
// the way CI does: every package documented, every committed markdown
// link resolving.
func TestRepositoryIsClean(t *testing.T) {
	repoRoot := "../.."
	problems, err := lintPackages(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	for _, md := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"} {
		problems = append(problems, lintMarkdown(filepath.Join(repoRoot, md))...)
	}
	if len(problems) > 0 {
		t.Fatalf("doclint problems in the repository:\n%s", strings.Join(problems, "\n"))
	}
}
