// Command doclint is the documentation gate run by the docs CI job.
// It enforces two invariants that would otherwise rot silently:
//
//  1. every Go package in the tree carries a package comment (a doc
//     comment on the package clause of at least one non-test file) —
//     the repository's convention is that each internal package states
//     the paper section it implements and its key invariant;
//  2. every relative link in the given markdown files resolves to an
//     existing file, so README/DESIGN/EXPERIMENTS cross-references
//     cannot dangle.
//
// Usage:
//
//	doclint                            # lint packages under ., default md files
//	doclint -md README.md,DESIGN.md ./internal ./cmd
//
// Exit status is non-zero if any problem is found; each problem is
// printed on its own line.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	md := flag.String("md", "README.md,DESIGN.md,EXPERIMENTS.md",
		"comma-separated markdown files whose relative links must resolve (empty: skip)")
	flag.Parse()

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}

	var problems []string
	for _, root := range roots {
		p, err := lintPackages(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if *md != "" {
		for _, file := range strings.Split(*md, ",") {
			problems = append(problems, lintMarkdown(strings.TrimSpace(file))...)
		}
	}

	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doclint: all packages documented, all markdown links resolve")
}

// skipDirs are directories that never hold package code of ours.
var skipDirs = map[string]bool{
	".git": true, ".github": true, "testdata": true, "bench": true,
}

// lintPackages walks root and reports every directory that contains
// non-test Go files but no package comment on any of them.
func lintPackages(root string) ([]string, error) {
	// dir → (has Go files, has a package doc comment)
	type state struct{ hasGo, hasDoc bool }
	dirs := map[string]*state{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] || (strings.HasPrefix(d.Name(), ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		st := dirs[dir]
		if st == nil {
			st = &state{}
			dirs[dir] = st
		}
		st.hasGo = true
		if st.hasDoc {
			return nil
		}
		// PackageClauseOnly stops after the package line but keeps the
		// doc comment attached to it — all doclint needs.
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("%s: %v", path, perr)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			st.hasDoc = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var problems []string
	for dir, st := range dirs {
		if st.hasGo && !st.hasDoc {
			problems = append(problems, fmt.Sprintf("%s: package has no package comment (document its paper section and key invariant)", dir))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// mdLink matches [text](target); targets with a scheme or pure
// anchors are skipped by the caller.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// lintMarkdown reports relative links in file that do not resolve to
// an existing file, and a missing file itself.
func lintMarkdown(file string) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", file, err)}
	}
	var problems []string
	base := filepath.Dir(file)
	for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue // external
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue // in-document anchor
		}
		if _, err := os.Stat(filepath.Join(base, target)); err != nil {
			problems = append(problems, fmt.Sprintf("%s: broken link %s", file, m[1]))
		}
	}
	return problems
}
