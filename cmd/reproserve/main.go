// Command reproserve runs the runtime as a network service: an HTTP
// front-end (internal/gateway) over one long-lived repro.Runtime,
// with admission control, per-tenant quotas and weighted-fair
// dispatch, bounded queueing with 429 + Retry-After shedding, and a
// graceful SIGTERM drain.
//
//	reproserve -addr :8080 -workers 2 -max-workers 8 \
//	           -tenant-rate 100 -tenant-burst 20 -queue-depth 128
//
// Endpoints (v1; the unversioned pre-v1 paths remain as aliases for
// one release):
//
//	POST   /v1/runs/{template}?tenant=T&n=N&timeout=D  run a computation (sync)
//	POST   /v1/runs/{template}?mode=async&...          202 {"run_id"} after admission
//	GET    /v1/runs/{id}                               poll: 200 record / 202 pending / 404
//	DELETE /v1/runs/{id}                               cancel a tracked run
//	GET    /v1/stats                                   admission + sink + runtime counters
//	GET    /v1/templates                               the template catalog
//	GET    /v1/healthz                                 readiness (503 while draining)
//
// Templates are the quickstart-style kernels of gateway.Builtins
// (fib, fanin, sort, parfor, spin). On SIGTERM/SIGINT the server
// stops admitting (503), completes every admitted computation,
// flushes every completed run's record to the sink backend, and
// exits; see DESIGN.md §9 for the drain argument and §11 for the
// sink.
//
// Completed runs publish RunRecords through a coalescing sink
// (DESIGN.md §11). -sink picks the backend:
//
//	-sink ring[:N]          bounded in-memory ring, N records (default, N=4096)
//	-sink jsonl:PATH[:MB]   append-only JSONL file, rotated past MB megabytes
//	-sink http://URL        POST each batch as a JSON array to URL
//
// -sink-threshold and -sink-interval tune the coalescing: a shard
// flushes at threshold buffered records, and a background flusher
// sweeps stragglers every interval.
//
// Self-defense (DESIGN.md §10): -reap-grace arms the hung-request
// reaper (a request still running that long past its deadline 504s
// and its dispatcher slot is replaced), -watchdog arms the scheduler
// stall watchdog, and both trip a -degraded-holddown window during
// which new admissions shed 503 + Retry-After. -chaos additionally
// registers the hostile "wedge" template (a task body that busy-spins
// ignoring cancellation) so the reap → degrade → recover → drain path
// can be drilled against a live server; never enable it on a deployment
// that accepts untrusted tenants.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/gateway"
	"repro/internal/sink"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker floor (0 = GOMAXPROCS)")
		maxWorkers  = flag.Int("max-workers", 0, "elastic worker ceiling (0 = fixed pool)")
		counterSpec = flag.String("counter", "adaptive", "dependency counter: adaptive[:K[:batch]] | dyn | fetchadd | snzi-D")
		queueDepth  = flag.Int("queue-depth", 128, "bounded admission queue across tenants")
		dispatchers = flag.Int("dispatchers", 0, "concurrent Runs bound (0 = 2×GOMAXPROCS)")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant quota, requests/second (0 = unmetered)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant burst size (0 = max(1, rate))")
		pegged      = flag.Duration("pegged-window", 50*time.Millisecond, "shed when the elastic pool stays pegged at max this long")
		timeout     = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		reapGrace   = flag.Duration("reap-grace", time.Second, "force-fail (504) a request still running this long past its deadline (negative disables)")
		holdDown    = flag.Duration("degraded-holddown", 2*time.Second, "shed admissions (503 + Retry-After) this long after a reap or stall")
		watchdog    = flag.Duration("watchdog", 0, "scheduler stall watchdog threshold (0 = off)")
		chaosMode   = flag.Bool("chaos", false, "register the hostile wedge template (self-defense drill; do not expose to untrusted tenants)")
		sinkSpec    = flag.String("sink", "ring", "run-record backend: ring[:N] | jsonl:PATH[:MB] | http(s)://URL")
		sinkThresh  = flag.Int("sink-threshold", 0, "per-shard records buffered before a flush (0 = default 32)")
		sinkIvl     = flag.Duration("sink-interval", 0, "background flush interval (0 = default 500ms)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "reproserve: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	// Validate the spec gracefully, then hand the string to WithCounter
	// so the in-counter grow threshold resolves against the final
	// worker count (not the pre-flag guess).
	if _, err := repro.ParseAlgorithm(*counterSpec, 1); err != nil {
		log.Fatalf("reproserve: -counter: %v", err)
	}
	opts := []repro.Option{repro.WithCounter(*counterSpec)}
	if *workers > 0 {
		opts = append(opts, repro.WithWorkers(*workers))
	}
	if *maxWorkers > 0 {
		opts = append(opts, repro.WithMaxWorkers(*maxWorkers))
	}

	var reg *gateway.Registry
	if *chaosMode {
		reg = gateway.Builtins()
		if err := reg.Register(gateway.WedgeTemplate()); err != nil {
			log.Fatalf("reproserve: -chaos: %v", err)
		}
		log.Printf("reproserve: chaos mode: hostile template %q registered", "wedge")
	}

	runSink, err := buildSink(*sinkSpec, *sinkThresh, *sinkIvl)
	if err != nil {
		log.Fatalf("reproserve: -sink: %v", err)
	}

	srv := gateway.NewServer(*addr, gateway.Config{
		RuntimeOptions:   opts,
		Registry:         reg,
		Sink:             runSink,
		QueueDepth:       *queueDepth,
		Dispatchers:      *dispatchers,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		PeggedWindow:     *pegged,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		ReapGrace:        *reapGrace,
		DegradedHoldDown: *holdDown,
		Watchdog:         *watchdog,
	})
	if err := srv.Listen(); err != nil {
		log.Fatalf("reproserve: %v", err)
	}
	log.Printf("reproserve: serving on %s (templates: %v)", srv.Addr(), srv.G.Registry().Names())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := srv.Serve(ctx); err != nil {
		log.Fatalf("reproserve: %v", err)
	}
	log.Printf("reproserve: drained and stopped")
}

// buildSink parses the -sink spec grammar — ring[:N], jsonl:PATH[:MB],
// or an http(s) URL — and wraps the backend in a coalescing sink with
// the given tuning (0 keeps the sink's defaults).
func buildSink(spec string, threshold int, interval time.Duration) (*sink.Sink, error) {
	var opts []sink.Option
	if threshold > 0 {
		opts = append(opts, sink.WithThreshold(threshold))
	}
	if interval > 0 {
		opts = append(opts, sink.WithInterval(interval))
	}
	switch {
	case spec == "ring":
		return sink.New(sink.NewRing(0), opts...), nil
	case strings.HasPrefix(spec, "ring:"):
		n, err := strconv.Atoi(spec[len("ring:"):])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("ring capacity %q: want a positive integer", spec[len("ring:"):])
		}
		return sink.New(sink.NewRing(n), opts...), nil
	case strings.HasPrefix(spec, "jsonl:"):
		rest := spec[len("jsonl:"):]
		maxBytes := int64(64 << 20) // default 64 MB per segment
		// A trailing :MB is a rotation bound; a lone "jsonl:" is an error.
		if i := strings.LastIndexByte(rest, ':'); i > 0 {
			if mb, err := strconv.Atoi(rest[i+1:]); err == nil {
				if mb <= 0 {
					return nil, fmt.Errorf("jsonl rotation bound %q: want positive megabytes", rest[i+1:])
				}
				maxBytes = int64(mb) << 20
				rest = rest[:i]
			}
		}
		if rest == "" {
			return nil, fmt.Errorf("jsonl spec needs a path: jsonl:PATH[:MB]")
		}
		b, err := sink.NewJSONL(rest, maxBytes)
		if err != nil {
			return nil, err
		}
		return sink.New(b, opts...), nil
	case strings.HasPrefix(spec, "http://"), strings.HasPrefix(spec, "https://"):
		return sink.New(sink.NewHTTP(spec, nil), opts...), nil
	default:
		return nil, fmt.Errorf("unknown sink spec %q: want ring[:N] | jsonl:PATH[:MB] | http(s)://URL", spec)
	}
}
