// Command reproserve runs the runtime as a network service: an HTTP
// front-end (internal/gateway) over one long-lived repro.Runtime,
// with admission control, per-tenant quotas and weighted-fair
// dispatch, bounded queueing with 429 + Retry-After shedding, and a
// graceful SIGTERM drain.
//
//	reproserve -addr :8080 -workers 2 -max-workers 8 \
//	           -tenant-rate 100 -tenant-burst 20 -queue-depth 128
//
// Endpoints:
//
//	POST /run/{template}?tenant=T&n=N&timeout=D   run a computation
//	GET  /stats                                   admission + runtime counters
//	GET  /templates                               the template catalog
//	GET  /healthz                                 readiness (503 while draining)
//
// Templates are the quickstart-style kernels of gateway.Builtins
// (fib, fanin, sort, parfor, spin). On SIGTERM/SIGINT the server
// stops admitting (503), completes every admitted computation, and
// exits; see DESIGN.md §9 for the drain argument.
//
// Self-defense (DESIGN.md §10): -reap-grace arms the hung-request
// reaper (a request still running that long past its deadline 504s
// and its dispatcher slot is replaced), -watchdog arms the scheduler
// stall watchdog, and both trip a -degraded-holddown window during
// which new admissions shed 503 + Retry-After. -chaos additionally
// registers the hostile "wedge" template (a task body that busy-spins
// ignoring cancellation) so the reap → degrade → recover → drain path
// can be drilled against a live server; never enable it on a deployment
// that accepts untrusted tenants.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/gateway"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker floor (0 = GOMAXPROCS)")
		maxWorkers  = flag.Int("max-workers", 0, "elastic worker ceiling (0 = fixed pool)")
		counterSpec = flag.String("counter", "adaptive", "dependency counter: adaptive[:K] | dyn | fetchadd | snzi-D")
		queueDepth  = flag.Int("queue-depth", 128, "bounded admission queue across tenants")
		dispatchers = flag.Int("dispatchers", 0, "concurrent Runs bound (0 = 2×GOMAXPROCS)")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant quota, requests/second (0 = unmetered)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant burst size (0 = max(1, rate))")
		pegged      = flag.Duration("pegged-window", 50*time.Millisecond, "shed when the elastic pool stays pegged at max this long")
		timeout     = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		reapGrace   = flag.Duration("reap-grace", time.Second, "force-fail (504) a request still running this long past its deadline (negative disables)")
		holdDown    = flag.Duration("degraded-holddown", 2*time.Second, "shed admissions (503 + Retry-After) this long after a reap or stall")
		watchdog    = flag.Duration("watchdog", 0, "scheduler stall watchdog threshold (0 = off)")
		chaosMode   = flag.Bool("chaos", false, "register the hostile wedge template (self-defense drill; do not expose to untrusted tenants)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "reproserve: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	// Validate the spec gracefully, then hand the string to WithCounter
	// so the in-counter grow threshold resolves against the final
	// worker count (not the pre-flag guess).
	if _, err := repro.ParseAlgorithm(*counterSpec, 1); err != nil {
		log.Fatalf("reproserve: -counter: %v", err)
	}
	opts := []repro.Option{repro.WithCounter(*counterSpec)}
	if *workers > 0 {
		opts = append(opts, repro.WithWorkers(*workers))
	}
	if *maxWorkers > 0 {
		opts = append(opts, repro.WithMaxWorkers(*maxWorkers))
	}

	var reg *gateway.Registry
	if *chaosMode {
		reg = gateway.Builtins()
		if err := reg.Register(gateway.WedgeTemplate()); err != nil {
			log.Fatalf("reproserve: -chaos: %v", err)
		}
		log.Printf("reproserve: chaos mode: hostile template %q registered", "wedge")
	}

	srv := gateway.NewServer(*addr, gateway.Config{
		RuntimeOptions:   opts,
		Registry:         reg,
		QueueDepth:       *queueDepth,
		Dispatchers:      *dispatchers,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		PeggedWindow:     *pegged,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		ReapGrace:        *reapGrace,
		DegradedHoldDown: *holdDown,
		Watchdog:         *watchdog,
	})
	if err := srv.Listen(); err != nil {
		log.Fatalf("reproserve: %v", err)
	}
	log.Printf("reproserve: serving on %s (templates: %v)", srv.Addr(), srv.G.Registry().Names())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := srv.Serve(ctx); err != nil {
		log.Fatalf("reproserve: %v", err)
	}
	log.Printf("reproserve: drained and stopped")
}
