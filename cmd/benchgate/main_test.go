package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
BenchmarkFig08Fanin/fetchadd/p=1  20  7206504 ns/op  7601466 ops/s/core  787053 B/op  32775 allocs/op
BenchmarkFig08Fanin/dyn/p=1       20 11947133 ns/op  4353865 ops/s/core 1018252 B/op  33987 allocs/op
BenchmarkBurst/elastic            20 50000000 ns/op  9000000 ops/s  4.000 peak-workers  500000 B/op  39999 allocs/op
BenchmarkFig13Topology/2-node/dyn 20 12000000 ns/op  120.5 local-steals  3.500 remote-steals  3000000 ops/s/core  911388 B/op  33441 allocs/op
BenchmarkZeroAlloc                10      100 ns/op        0 B/op            0 allocs/op
PASS
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchLines(t *testing.T) {
	res, order, err := parse(writeTemp(t, sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5: %v", len(order), order)
	}
	fa := res["BenchmarkFig08Fanin/fetchadd/p=1"]
	if fa.Iterations != 20 || fa.NsPerOp != 7206504 || fa.AllocsOp != 32775 ||
		fa.Metrics["ops/s/core"] != 7601466 {
		t.Fatalf("fetchadd row parsed wrong: %+v", fa)
	}
	if z := res["BenchmarkZeroAlloc"]; z.AllocsOp != 0 || z.BytesOp != 0 {
		t.Fatalf("zero row parsed wrong: %+v", z)
	}
}

func defaultLimits() limits {
	return limits{maxAllocRatio: 1.10, allocSlack: 1, minOpsRatio: 0.60}
}

func runGate(t *testing.T, current, baseline string, lim limits) (failures, compared int, out string) {
	t.Helper()
	cur, order, err := parse(writeTemp(t, current))
	if err != nil {
		t.Fatal(err)
	}
	base, baseOrder, err := parse(writeTemp(t, baseline))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	f, c := gate(&sb, cur, order, base, baseOrder, lim)
	return f, c, sb.String()
}

func TestGateIdenticalRunsPass(t *testing.T) {
	failures, compared, out := runGate(t, sampleBench, sampleBench, defaultLimits())
	if failures != 0 || compared != 5 {
		t.Fatalf("failures=%d compared=%d\n%s", failures, compared, out)
	}
}

func TestGateAllocRegressionFails(t *testing.T) {
	regressed := strings.Replace(sampleBench, "32775 allocs/op", "99999 allocs/op", 1)
	failures, _, out := runGate(t, regressed, sampleBench, defaultLimits())
	if failures != 1 || !strings.Contains(out, "allocs/op") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
}

func TestGateZeroAllocBaselineStillGated(t *testing.T) {
	// 0 → 2 allocs/op must fail even though any ratio of zero is zero.
	regressed := strings.Replace(sampleBench, "0 allocs/op", "2 allocs/op", 1)
	failures, _, out := runGate(t, regressed, sampleBench, defaultLimits())
	if failures != 1 {
		t.Fatalf("failures=%d, want 1 (zero-alloc baseline unguarded)\n%s", failures, out)
	}
}

func TestGateThroughputCollapseFails(t *testing.T) {
	slow := strings.Replace(sampleBench, "7601466 ops/s/core", "1000 ops/s/core", 1)
	failures, _, out := runGate(t, slow, sampleBench, defaultLimits())
	if failures != 1 || !strings.Contains(out, "ops/s/core") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
}

// TestGateTotalThroughputCollapseFails: cells that report total ops/s
// (the burst benchmark — its pool configurations run different worker
// counts, so per-core numbers would compare nothing) are gated exactly
// like ops/s/core cells.
func TestGateTotalThroughputCollapseFails(t *testing.T) {
	slow := strings.Replace(sampleBench, "9000000 ops/s", "1000 ops/s", 1)
	failures, _, out := runGate(t, slow, sampleBench, defaultLimits())
	if failures != 1 || !strings.Contains(out, "ops/s 1000") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
}

// TestGateMissingCellFails: a baseline cell absent from the run (a
// renamed or deleted benchmark) is a gate failure by default — the
// gate must not silently narrow.
func TestGateMissingCellFails(t *testing.T) {
	var kept []string
	for _, line := range strings.Split(sampleBench, "\n") {
		if !strings.HasPrefix(line, "BenchmarkFig08Fanin/dyn") {
			kept = append(kept, line)
		}
	}
	current := strings.Join(kept, "\n")
	failures, compared, out := runGate(t, current, sampleBench, defaultLimits())
	if failures != 1 || !strings.Contains(out, "missing from this run") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
	if compared != 4 {
		t.Fatalf("compared=%d, want 4", compared)
	}

	lim := defaultLimits()
	lim.allowMissing = true
	failures, _, out = runGate(t, current, sampleBench, lim)
	if failures != 0 || !strings.Contains(out, "WARN") {
		t.Fatalf("-allow-missing: failures=%d\n%s", failures, out)
	}
}

// TestGateVanishedMetricFails: every custom metric a baseline cell
// records is a commitment — the Fig13 steal-locality split vanishing
// from a cell means the topology instrumentation came unwired, and
// must fail the gate rather than silently stop being recorded.
func TestGateVanishedMetricFails(t *testing.T) {
	stripped := strings.Replace(sampleBench, "120.5 local-steals  3.500 remote-steals  ", "", 1)
	failures, _, out := runGate(t, stripped, sampleBench, defaultLimits())
	if failures != 2 || !strings.Contains(out, "local-steals missing") || !strings.Contains(out, "remote-steals missing") {
		t.Fatalf("failures=%d, want 2 (both steal metrics vanished)\n%s", failures, out)
	}
	noPeak := strings.Replace(sampleBench, "4.000 peak-workers  ", "", 1)
	failures, _, out = runGate(t, noPeak, sampleBench, defaultLimits())
	if failures != 1 || !strings.Contains(out, "peak-workers missing") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
}

// TestGateStealCountValuesNotGated: steal-split values are
// scheduling-dependent counts, so only their presence is gated — a
// different split must pass.
func TestGateStealCountValuesNotGated(t *testing.T) {
	moved := strings.Replace(sampleBench, "120.5 local-steals", "1.000 local-steals", 1)
	failures, _, out := runGate(t, moved, sampleBench, defaultLimits())
	if failures != 0 {
		t.Fatalf("failures=%d, want 0 (steal counts are presence-gated only)\n%s", failures, out)
	}
}

// TestGateExtraCellIsNotCompared: new benchmarks without a baseline
// row pass through (they gain a gate when the baseline is next
// regenerated).
func TestGateExtraCellIsNotCompared(t *testing.T) {
	current := sampleBench + "BenchmarkBrandNew  5  10 ns/op  1 allocs/op\n"
	failures, compared, out := runGate(t, current, sampleBench, defaultLimits())
	if failures != 0 || compared != 5 {
		t.Fatalf("failures=%d compared=%d\n%s", failures, compared, out)
	}
}
