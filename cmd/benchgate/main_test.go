package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
BenchmarkFig08Fanin/fetchadd/p=1  20  7206504 ns/op  7601466 ops/s/core  787053 B/op  32775 allocs/op
BenchmarkFig08Fanin/dyn/p=1       20 11947133 ns/op  4353865 ops/s/core 1018252 B/op  33987 allocs/op
BenchmarkBurst/elastic            20 50000000 ns/op  9000000 ops/s  4.000 peak-workers  500000 B/op  39999 allocs/op
BenchmarkFig13Topology/2-node/dyn 20 12000000 ns/op  120.5 local-steals  3.500 remote-steals  3000000 ops/s/core  911388 B/op  33441 allocs/op
BenchmarkZeroAlloc                10      100 ns/op        0 B/op            0 allocs/op
PASS
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBenchLines(t *testing.T) {
	res, order, err := parse(writeTemp(t, sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5: %v", len(order), order)
	}
	fa := res["BenchmarkFig08Fanin/fetchadd/p=1"]
	if fa.Iterations != 20 || fa.NsPerOp != 7206504 || fa.AllocsOp != 32775 ||
		fa.Metrics["ops/s/core"] != 7601466 {
		t.Fatalf("fetchadd row parsed wrong: %+v", fa)
	}
	if z := res["BenchmarkZeroAlloc"]; z.AllocsOp != 0 || z.BytesOp != 0 {
		t.Fatalf("zero row parsed wrong: %+v", z)
	}
}

func defaultLimits() limits {
	return limits{maxAllocRatio: 1.10, allocSlack: 1, minOpsRatio: 0.60}
}

func runGate(t *testing.T, current, baseline string, lim limits) (failures, compared int, out string) {
	t.Helper()
	cur, order, err := parse(writeTemp(t, current))
	if err != nil {
		t.Fatal(err)
	}
	base, baseOrder, err := parse(writeTemp(t, baseline))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	f, c := gate(&sb, cur, order, base, baseOrder, lim)
	return f, c, sb.String()
}

func TestGateIdenticalRunsPass(t *testing.T) {
	failures, compared, out := runGate(t, sampleBench, sampleBench, defaultLimits())
	if failures != 0 || compared != 5 {
		t.Fatalf("failures=%d compared=%d\n%s", failures, compared, out)
	}
}

func TestGateAllocRegressionFails(t *testing.T) {
	regressed := strings.Replace(sampleBench, "32775 allocs/op", "99999 allocs/op", 1)
	failures, _, out := runGate(t, regressed, sampleBench, defaultLimits())
	if failures != 1 || !strings.Contains(out, "allocs/op") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
}

func TestGateZeroAllocBaselineStillGated(t *testing.T) {
	// 0 → 2 allocs/op must fail even though any ratio of zero is zero.
	regressed := strings.Replace(sampleBench, "0 allocs/op", "2 allocs/op", 1)
	failures, _, out := runGate(t, regressed, sampleBench, defaultLimits())
	if failures != 1 {
		t.Fatalf("failures=%d, want 1 (zero-alloc baseline unguarded)\n%s", failures, out)
	}
}

func TestGateThroughputCollapseFails(t *testing.T) {
	slow := strings.Replace(sampleBench, "7601466 ops/s/core", "1000 ops/s/core", 1)
	failures, _, out := runGate(t, slow, sampleBench, defaultLimits())
	if failures != 1 || !strings.Contains(out, "ops/s/core") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
}

// TestGateTotalThroughputCollapseFails: cells that report total ops/s
// (the burst benchmark — its pool configurations run different worker
// counts, so per-core numbers would compare nothing) are gated exactly
// like ops/s/core cells.
func TestGateTotalThroughputCollapseFails(t *testing.T) {
	slow := strings.Replace(sampleBench, "9000000 ops/s", "1000 ops/s", 1)
	failures, _, out := runGate(t, slow, sampleBench, defaultLimits())
	if failures != 1 || !strings.Contains(out, "ops/s 1000") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
}

// TestGateMissingCellFails: a baseline cell absent from the run (a
// renamed or deleted benchmark) is a gate failure by default — the
// gate must not silently narrow.
func TestGateMissingCellFails(t *testing.T) {
	var kept []string
	for _, line := range strings.Split(sampleBench, "\n") {
		if !strings.HasPrefix(line, "BenchmarkFig08Fanin/dyn") {
			kept = append(kept, line)
		}
	}
	current := strings.Join(kept, "\n")
	failures, compared, out := runGate(t, current, sampleBench, defaultLimits())
	if failures != 1 || !strings.Contains(out, "missing from this run") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
	if compared != 4 {
		t.Fatalf("compared=%d, want 4", compared)
	}

	lim := defaultLimits()
	lim.allowMissing = true
	failures, _, out = runGate(t, current, sampleBench, lim)
	if failures != 0 || !strings.Contains(out, "WARN") {
		t.Fatalf("-allow-missing: failures=%d\n%s", failures, out)
	}
}

// TestGateVanishedMetricFails: every custom metric a baseline cell
// records is a commitment — the Fig13 steal-locality split vanishing
// from a cell means the topology instrumentation came unwired, and
// must fail the gate rather than silently stop being recorded.
func TestGateVanishedMetricFails(t *testing.T) {
	stripped := strings.Replace(sampleBench, "120.5 local-steals  3.500 remote-steals  ", "", 1)
	failures, _, out := runGate(t, stripped, sampleBench, defaultLimits())
	if failures != 2 || !strings.Contains(out, "local-steals missing") || !strings.Contains(out, "remote-steals missing") {
		t.Fatalf("failures=%d, want 2 (both steal metrics vanished)\n%s", failures, out)
	}
	noPeak := strings.Replace(sampleBench, "4.000 peak-workers  ", "", 1)
	failures, _, out = runGate(t, noPeak, sampleBench, defaultLimits())
	if failures != 1 || !strings.Contains(out, "peak-workers missing") {
		t.Fatalf("failures=%d\n%s", failures, out)
	}
}

// TestGateStealCountValuesNotGated: steal-split values are
// scheduling-dependent counts, so only their presence is gated — a
// different split must pass.
func TestGateStealCountValuesNotGated(t *testing.T) {
	moved := strings.Replace(sampleBench, "120.5 local-steals", "1.000 local-steals", 1)
	failures, _, out := runGate(t, moved, sampleBench, defaultLimits())
	if failures != 0 {
		t.Fatalf("failures=%d, want 0 (steal counts are presence-gated only)\n%s", failures, out)
	}
}

const sampleSimBench = `goos: linux
BenchmarkSim/chase-lev/flat     100  12186868 ns/op  32768 executed  6851 local-steals  4.000 promotions  0 remote-steals  32.00 ticks  26757838 B/op  55039 allocs/op
BenchmarkSim/chase-lev/elastic   10 110622273 ns/op  131072 executed  8202 local-steals  369.0 peak-workers  128.0 promotions  0 remote-steals  353.0 retired  353.0 spawned  16.00 steady-workers  437.0 ticks  30527190 B/op  108853 allocs/op
PASS
`

// TestGateExactMetrics: with -exact-metrics every custom metric is an
// equality gate — a single steal of drift fails, because the sim's
// numbers are pure functions of the config and any change means the
// modeled decision logic moved. ns/op and allocs/op keep their usual
// regimes (they measure the simulator's own speed, not the model).
func TestGateExactMetrics(t *testing.T) {
	lim := defaultLimits()
	lim.exactMetrics = true

	failures, compared, out := runGate(t, sampleSimBench, sampleSimBench, lim)
	if failures != 0 || compared != 2 {
		t.Fatalf("identical run: failures=%d compared=%d\n%s", failures, compared, out)
	}

	drifted := strings.Replace(sampleSimBench, "6851 local-steals", "6850 local-steals", 1)
	failures, _, out = runGate(t, drifted, sampleSimBench, lim)
	if failures != 1 || !strings.Contains(out, "exact gate") {
		t.Fatalf("one-steal drift: failures=%d, want 1\n%s", failures, out)
	}

	// The same drift passes the default presence-only regime — the
	// exact regime is opt-in per baseline, not a global tightening.
	failures, _, out = runGate(t, drifted, sampleSimBench, defaultLimits())
	if failures != 0 {
		t.Fatalf("presence regime: failures=%d, want 0\n%s", failures, out)
	}

	// Vanished metrics still fail first, with the missing-metric shape.
	stripped := strings.Replace(sampleSimBench, "128.0 promotions  ", "", 1)
	failures, _, out = runGate(t, stripped, sampleSimBench, lim)
	if failures != 1 || !strings.Contains(out, "promotions missing") {
		t.Fatalf("vanished metric: failures=%d\n%s", failures, out)
	}

	// ns/op is not exact-gated: wall time may move freely.
	slower := strings.Replace(sampleSimBench, "12186868 ns/op", "99999999 ns/op", 1)
	failures, _, out = runGate(t, slower, sampleSimBench, lim)
	if failures != 0 {
		t.Fatalf("ns/op drift: failures=%d, want 0\n%s", failures, out)
	}
}

// TestGateExtraCellIsNotCompared: new benchmarks without a baseline
// row pass through (they gain a gate when the baseline is next
// regenerated).
func TestGateExtraCellIsNotCompared(t *testing.T) {
	current := sampleBench + "BenchmarkBrandNew  5  10 ns/op  1 allocs/op\n"
	failures, compared, out := runGate(t, current, sampleBench, defaultLimits())
	if failures != 0 || compared != 5 {
		t.Fatalf("failures=%d compared=%d\n%s", failures, compared, out)
	}
}
