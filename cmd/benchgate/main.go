// Command benchgate turns `go test -bench` output into a JSON artifact
// and gates it against a committed baseline, so CI fails loudly when a
// change regresses the hot path (allocations are compared strictly —
// they are deterministic — and throughput loosely, to ride out shared
// runner noise).
//
// Usage:
//
//	go test -run=NONE -bench=BenchmarkFig08Fanin -benchmem . | tee bench.txt
//	benchgate -in bench.txt -json BENCH_fanin.json -baseline bench/baseline_fanin.txt
//
// The JSON file carries, per benchmark: ns/op, allocs/op, B/op, and
// every custom metric the harness reports (ops/s/core,
// incounter-nodes, the Fig13 local-steals/remote-steals locality
// split). With -baseline, benchgate exits non-zero if any benchmark
// present in both files regresses beyond the thresholds, if a baseline
// benchmark is missing from the run entirely, or if any custom metric
// a baseline cell records is absent from the run's cell — a renamed
// or dropped cell (or a metric whose instrumentation came unwired)
// must fail its gate, not silently stop being gated (-allow-missing
// restores the old lenient behavior for whole missing cells in
// partial local runs).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line, parsed.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	BytesOp    float64            `json:"bytes_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the JSON artifact schema.
type File struct {
	Results []Result `json:"results"`
}

func parse(path string) (map[string]Result, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := map[string]Result{}
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		r := Result{Name: fields[0], Metrics: map[string]float64{}}
		r.Iterations, _ = strconv.ParseInt(fields[1], 10, 64)
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "allocs/op":
				r.AllocsOp = v
			case "B/op":
				r.BytesOp = v
			default:
				r.Metrics[unit] = v
			}
		}
		out[r.Name] = r
		order = append(order, r.Name)
	}
	return out, order, sc.Err()
}

func main() {
	in := flag.String("in", "", "bench output to parse (required)")
	jsonOut := flag.String("json", "", "write parsed results as JSON here")
	baseline := flag.String("baseline", "", "bench output to gate against")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 1.10, "fail if allocs/op exceeds baseline by this factor")
	allocSlack := flag.Float64("alloc-slack", 1, "absolute allocs/op allowed above baseline (keeps zero-alloc baselines gated; warmup noise amortizes to <1 over b.N)")
	minOpsRatio := flag.Float64("min-ops-ratio", 0.60, "fail if ops/s/core falls below baseline by this factor (loose: shared runners are noisy)")
	exactMetrics := flag.Bool("exact-metrics", false, "gate every custom metric by exact equality instead of presence/ratio (for deterministic cells: the sim baseline)")
	allowMissing := flag.Bool("allow-missing", false, "tolerate baseline benchmarks absent from the run (default: a missing cell fails its gate)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -in is required")
		os.Exit(2)
	}

	cur, order, err := parse(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines found in", *in)
		os.Exit(2)
	}

	if *jsonOut != "" {
		var file File
		for _, name := range order {
			file.Results = append(file.Results, cur[name])
		}
		data, err := json.MarshalIndent(file, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: writing %s: %v\n", *jsonOut, err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d results to %s\n", len(file.Results), *jsonOut)
	}

	if *baseline == "" {
		return
	}
	base, baseOrder, err := parse(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	failures, compared := gate(os.Stdout, cur, order, base, baseOrder, limits{
		maxAllocRatio: *maxAllocRatio,
		allocSlack:    *allocSlack,
		minOpsRatio:   *minOpsRatio,
		exactMetrics:  *exactMetrics,
		allowMissing:  *allowMissing,
	})
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no overlapping benchmarks between input and baseline")
		os.Exit(2)
	}
	if failures > 0 {
		fmt.Printf("benchgate: %d regression(s) against %s\n", failures, *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within thresholds of %s\n", compared, *baseline)
}

// limits are the gating thresholds (see the flag definitions).
type limits struct {
	maxAllocRatio float64
	allocSlack    float64
	minOpsRatio   float64
	// exactMetrics switches every custom metric from the
	// presence/ratio regime to exact equality. It exists for cells
	// whose metrics are pure functions of their config — the
	// discrete-event sim benchmark — where any drift, even one steal,
	// means the modeled decision logic changed and the baseline must
	// be regenerated in the same change. ns/op and allocs/op stay on
	// their usual gates: they measure the simulator, not the model.
	exactMetrics bool
	allowMissing bool
}

// gate compares a run against the baseline and returns the failure
// count and how many benchmarks overlapped. Every baseline cell is a
// commitment: unless lim.allowMissing, a baseline benchmark absent
// from the run fails, so renaming or dropping a benchmark cannot
// silently retire its gate.
func gate(w io.Writer, cur map[string]Result, order []string, base map[string]Result, baseOrder []string, lim limits) (failures, compared int) {
	for _, name := range baseOrder {
		if _, ok := cur[name]; ok {
			continue
		}
		if lim.allowMissing {
			fmt.Fprintf(w, "WARN %s: in baseline but not in this run (-allow-missing)\n", name)
			continue
		}
		fmt.Fprintf(w, "FAIL %s: in baseline but missing from this run (renamed or dropped cell? regenerate the baseline in the same change)\n", name)
		failures++
	}
	for _, name := range order {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			continue
		}
		compared++
		// A zero-alloc baseline is the strongest claim the gate protects,
		// and a pure ratio degenerates to "anything passes" at zero — so
		// the limit is the ratio or a small absolute headroom over the
		// baseline, whichever is larger, rather than skipping zero (and
		// near-zero) baselines.
		allocLimit := b.AllocsOp * lim.maxAllocRatio
		if abs := b.AllocsOp + lim.allocSlack; abs > allocLimit {
			allocLimit = abs
		}
		if c.AllocsOp > allocLimit {
			fmt.Fprintf(w, "FAIL %s: allocs/op %.0f vs baseline %.0f (limit %.0f)\n",
				name, c.AllocsOp, b.AllocsOp, allocLimit)
			failures++
		}
		// Every custom metric in the baseline is a commitment, exactly
		// like the cells themselves: a metric vanishing from a cell —
		// ops/s/core, the Fig13 local-steals/remote-steals locality
		// split, promotions — means the instrumentation behind it came
		// unwired, which must fail the gate rather than silently stop
		// being recorded. Throughput metrics (ops/s/core for the
		// per-figure benchmarks; total ops/s for burst, whose pool
		// configurations deliberately run different worker counts) are
		// additionally value-gated; other metrics are
		// scheduling-dependent counts (steal splits, peak workers), so
		// presence is the contract and values are left to the figure
		// tables.
		for _, metric := range sortedKeys(b.Metrics) {
			bo := b.Metrics[metric]
			co, ok := c.Metrics[metric]
			if !ok {
				fmt.Fprintf(w, "FAIL %s: %s missing (baseline %.0f)\n", name, metric, bo)
				failures++
				continue
			}
			if lim.exactMetrics {
				if co != bo {
					fmt.Fprintf(w, "FAIL %s: %s %v != baseline %v (exact gate)\n",
						name, metric, co, bo)
					failures++
				}
				continue
			}
			if (metric == "ops/s/core" || metric == "ops/s") && bo > 0 && co < bo*lim.minOpsRatio {
				fmt.Fprintf(w, "FAIL %s: %s %.0f vs baseline %.0f (limit ×%.2f)\n",
					name, metric, co, bo, lim.minOpsRatio)
				failures++
			}
		}
	}
	return failures, compared
}

// sortedKeys returns a metric map's keys in sorted order, so gate
// output (and failure ordering) is stable across runs.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
