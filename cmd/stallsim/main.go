// Command stallsim runs the fanin workload against the simulated
// shared-memory stall model (internal/memmodel) and reports contention
// — stalls per counter operation — for a chosen algorithm and
// simulated processor count. It is the direct empirical probe of the
// paper's Theorem 4.9 (amortized O(1) contention for the in-counter)
// and of the Θ(P) fetch-and-add behaviour it contrasts against.
//
// Usage:
//
//	stallsim -algo dyn -p 64 -n 4096
//	stallsim -algo fetchadd -p 64
//	stallsim -algo snzi-4 -sweep 1,2,4,8,16,32,64,128
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/stallsim"
)

func parseAlgo(name string, threshold uint64) (stallsim.SimAlgorithm, error) {
	switch {
	case name == "fetchadd":
		return stallsim.FetchAdd{}, nil
	case name == "dyn":
		return stallsim.Dynamic{Threshold: threshold}, nil
	case strings.HasPrefix(name, "snzi-"):
		d, err := strconv.Atoi(strings.TrimPrefix(name, "snzi-"))
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad fixed depth in %q", name)
		}
		return stallsim.FixedSNZI{Depth: d}, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (want fetchadd, dyn, snzi-D)", name)
}

func main() {
	var (
		algo      = flag.String("algo", "dyn", "counter algorithm: fetchadd | dyn | snzi-D")
		p         = flag.Int("p", 16, "simulated processor count")
		sweep     = flag.String("sweep", "", "comma-separated processor counts (overrides -p)")
		n         = flag.Uint64("n", 4096, "fanin leaf count")
		threshold = flag.Uint64("threshold", 1, "dyn grow threshold (1 = grow always, the analyzed case)")
		seed      = flag.Uint64("seed", 42, "scheduler seed")
	)
	flag.Parse()

	alg, err := parseAlgo(*algo, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stallsim:", err)
		os.Exit(2)
	}

	ps := []int{*p}
	if *sweep != "" {
		ps = ps[:0]
		for _, s := range strings.Split(*sweep, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "stallsim: bad sweep entry %q\n", s)
				os.Exit(2)
			}
			ps = append(ps, v)
		}
	}

	fmt.Printf("%-10s %6s %8s %12s %12s %12s %10s\n",
		"algo", "P", "n", "stalls/op", "steps/op", "max-stall", "nodes")
	for _, procs := range ps {
		res := stallsim.RunFanin(stallsim.FaninConfig{
			Threads: procs, N: *n, Algorithm: alg, Seed: *seed,
		})
		maxStall := uint64(0)
		if res.Increments != nil && res.Increments.MaxStalls > maxStall {
			maxStall = res.Increments.MaxStalls
		}
		if res.Decrements != nil && res.Decrements.MaxStalls > maxStall {
			maxStall = res.Decrements.MaxStalls
		}
		fmt.Printf("%-10s %6d %8d %12.4f %12.3f %12d %10d\n",
			*algo, procs, *n, res.StallsPerOp(), res.StepsPerOp(), maxStall, res.Nodes)
		if res.MaxArrives > 0 {
			fmt.Printf("%-10s %6s   max arrives per increment: %d (Corollary 4.7 bound: 3 at threshold 1)\n",
				"", "", res.MaxArrives)
		}
	}
}
