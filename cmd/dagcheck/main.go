// Command dagcheck fuzzes the sp-dag runtime: it executes randomly
// generated nested-parallel programs on the real work-stealing
// scheduler with a structural recorder attached, then validates every
// invariant the paper's data structure promises — each vertex executes
// exactly once, the recorded graph is acyclic and two-terminal
// series-parallel, and the final vertex runs last. It exits non-zero
// on the first violation and prints the offending seed, making
// failures reproducible.
//
// Usage:
//
//	dagcheck -iters 50 -budget 400 -procs 4
//	dagcheck -seed 1234            # replay one seed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/counter"
	"repro/internal/nested"
	"repro/internal/rng"
	"repro/internal/spdag"
)

func run(seed uint64, budget, procs int, algo counter.Algorithm, dotPath string) error {
	rec := spdag.NewMemRecorder()
	rt := nested.New(nested.Config{Workers: procs, Seed: seed, Recorder: rec, Algorithm: algo})
	defer rt.Close()

	g := rng.NewXoshiro(seed)
	remaining := budget
	var program func(c *nested.Ctx, fuel int)
	program = func(c *nested.Ctx, fuel int) {
		for fuel > 0 && remaining > 0 {
			remaining--
			switch g.Uint64n(4) {
			case 0:
				return
			case 1:
				f := fuel / 2
				c.Async(func(c *nested.Ctx) { program(c, f) })
			case 2:
				f := fuel / 2
				c.Finish(func(c *nested.Ctx) { program(c, f) })
				return // tail operation consumed the task
			default:
				f := fuel / 3
				c.ForkJoinThen(
					func(c *nested.Ctx) { program(c, f) },
					func(c *nested.Ctx) { program(c, f) },
					func(c *nested.Ctx) { program(c, f) },
				)
				return
			}
			fuel--
		}
	}
	if err := rt.Run(func(c *nested.Ctx) { program(c, budget) }); err != nil {
		return fmt.Errorf("run failed: %w", err)
	}
	if dotPath != "" {
		if err := os.WriteFile(dotPath, []byte(rec.Dot(fmt.Sprintf("seed%d", seed))), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dotPath)
	}
	return rec.CheckAll()
}

func main() {
	var (
		iters  = flag.Int("iters", 25, "number of random programs to run")
		budget = flag.Int("budget", 300, "operation budget per program")
		procs  = flag.Int("procs", 0, "workers (0 = GOMAXPROCS)")
		seed   = flag.Uint64("seed", 0, "replay a single seed (0 = fresh seeds)")
		algo   = flag.String("algo", "dyn", "counter algorithm: fetchadd | dyn | adaptive[:K[:batch]] | snzi-D")
		dot    = flag.String("dot", "", "with -seed: write the recorded dag in Graphviz format to this file")
	)
	flag.Parse()

	alg, err := counter.Parse(*algo, 4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagcheck:", err)
		os.Exit(2)
	}

	if *seed != 0 {
		if err := run(*seed, *budget, *procs, alg, *dot); err != nil {
			fmt.Fprintf(os.Stderr, "dagcheck: seed %d: %v\n", *seed, err)
			os.Exit(1)
		}
		fmt.Printf("seed %d ok\n", *seed)
		return
	}
	for i := 0; i < *iters; i++ {
		s := rng.AutoSeed()
		if err := run(s, *budget, *procs, alg, ""); err != nil {
			fmt.Fprintf(os.Stderr, "dagcheck: FAILED at seed %d: %v\n", s, err)
			fmt.Fprintf(os.Stderr, "replay with: dagcheck -seed %d -budget %d -procs %d -algo %s\n",
				s, *budget, *procs, *algo)
			os.Exit(1)
		}
		fmt.Printf("program %d (seed %d): ok\n", i+1, s)
	}
	fmt.Printf("dagcheck: %d random programs validated (exactly-once execution, acyclic, series-parallel)\n", *iters)
}
