// Benchmarks regenerating the paper's tables and figures at reduced,
// go-test-friendly sizes. One Benchmark per figure of the PPoPP'17
// evaluation (the full, paper-scale sweeps live in cmd/ppopp17bench;
// see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results).
//
// Conventions: each iteration of a benchmark executes one complete
// workload run; the custom metric "ops/s/core" is the paper's y-axis
// (counter operations per second per worker), and the stall-model
// benchmarks report "stalls/op", the contention quantity of Theorem
// 4.9.
package repro_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/gateway"
	"repro/internal/nested"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/sink"
	"repro/internal/snzi"
	"repro/internal/stallsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

const benchN = 1 << 14 // fanin leaves per iteration

func procsAxis() []int {
	return []int{1, 2}
}

func newRT(b *testing.B, procs int, algo counter.Algorithm) *nested.Runtime {
	b.Helper()
	// The topology is pinned flat so the gated baseline cells keep one
	// meaning on every runner: without this, a multi-socket host's
	// sysfs would silently switch the cells to topology-aware
	// scheduling (same rationale as harness.Run; the topology axis has
	// its own benchmark, BenchmarkFig13Topology).
	w := procs
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	rt := nested.New(nested.Config{Workers: procs, Algorithm: algo, Seed: 1,
		Topology: topology.Flat(w)})
	b.Cleanup(rt.Close)
	return rt
}

func reportFanin(b *testing.B, res workload.Result) {
	b.ReportMetric(res.OpsPerSecPerCore(), "ops/s/core")
	b.ReportMetric(float64(res.FinalNodes), "incounter-nodes")
}

// BenchmarkFig08Fanin — Figure 8: fanin across counter algorithms and
// core counts, plus the contention-adaptive composite (within noise of
// fetchadd while uncontended, promoting toward dyn under contention).
func BenchmarkFig08Fanin(b *testing.B) {
	algos := []string{"fetchadd", "snzi-1", "snzi-4", "snzi-8", "dyn", "adaptive"}
	for _, algo := range algos {
		for _, p := range procsAxis() {
			b.Run(fmt.Sprintf("%s/p=%d", algo, p), func(b *testing.B) {
				alg, err := counter.Parse(algo, nested.DefaultThreshold(p))
				if err != nil {
					b.Fatal(err)
				}
				rt := newRT(b, p, alg)
				var res workload.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res = workload.Fanin(rt, benchN)
				}
				b.StopTimer()
				reportFanin(b, res)
			})
		}
	}
}

// BenchmarkPhaseShift — the adaptive counter's motivating workload: a
// low-contention prologue into a fan-in storm on one finish counter,
// which neither static algorithm wins at both ends.
func BenchmarkPhaseShift(b *testing.B) {
	for _, algo := range []string{"fetchadd", "dyn", "adaptive"} {
		for _, p := range procsAxis() {
			b.Run(fmt.Sprintf("%s/p=%d", algo, p), func(b *testing.B) {
				alg, err := counter.Parse(algo, nested.DefaultThreshold(p))
				if err != nil {
					b.Fatal(err)
				}
				rt := newRT(b, p, alg)
				var res workload.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res = workload.PhaseShift(rt, benchN)
				}
				b.StopTimer()
				reportFanin(b, res)
				if pr, ok := alg.(counter.PromotionReporter); ok {
					// Per iteration, not the raw total: the stats sink
					// accumulates across all b.N runs, and a cumulative
					// value would make the committed baseline depend on
					// -benchtime.
					b.ReportMetric(float64(pr.Promotions())/float64(b.N), "promotions")
				}
			})
		}
	}
}

// BenchmarkZipfHotKey — the batched counter frontend's motivating
// workload: k live finish counters drawing zipf(skew)-distributed
// shares of n operations, so the hot head key stays promoted while the
// cold tail stays on cells. The cells compare the promoted-unbatched
// spec (adaptive:0 — eager promotion isolates the batching axis from
// host parallelism) against the batched frontend (adaptive:0:16);
// shared-rmws/op is the coalescing ledger's headline quotient, and the
// full batch-threshold sweep lives in ppopp17bench -fig zipf.
func BenchmarkZipfHotKey(b *testing.B) {
	const (
		zipfN    = benchN / 4
		zipfKeys = 8
		zipfSkew = 1.2
	)
	for _, spec := range []string{"adaptive:0", "adaptive:0:16"} {
		for _, p := range procsAxis() {
			b.Run(fmt.Sprintf("%s/p=%d", spec, p), func(b *testing.B) {
				alg, err := counter.Parse(spec, nested.DefaultThreshold(p))
				if err != nil {
					b.Fatal(err)
				}
				rt := newRT(b, p, alg)
				before := rt.Scheduler().Stats()
				var res workload.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res = workload.ZipfHotKey(rt, zipfN, zipfKeys, zipfSkew)
				}
				b.StopTimer()
				after := rt.Scheduler().Stats()
				b.ReportMetric(res.OpsPerSecPerCore(), "ops/s/core")
				// Per-op ledger across all b.N runs: operations not
				// buffered hit the shared counter directly, buffered ones
				// only surface as frontend flushes.
				ops := res.CounterOps * uint64(b.N)
				flushes := after.CounterFlushes - before.CounterFlushes
				buffered := after.CounterLocalIncs - before.CounterLocalIncs
				rmws := flushes
				if ops > buffered {
					rmws += ops - buffered
				}
				b.ReportMetric(float64(rmws)/float64(ops), "shared-rmws/op")
			})
		}
	}
}

// BenchmarkBurst — the elastic worker pool's motivating workload (not
// a figure of the paper): alternating idle gaps and concurrent
// fan-out storms, on a pool fixed at the floor, fixed at the ceiling,
// and elastic between the two. The ops/s metric (total, not per-core —
// the three pools deliberately run different worker counts) is what
// benchgate gates: the elastic cell must hold the fixed-max cell's
// throughput while the peak/steady metrics show it growing to the
// ceiling during storms and renting back down after (the direct
// elastic-vs-fixed-max ratio is asserted in elastic_test.go).
func BenchmarkBurst(b *testing.B) {
	const maxW = 4
	cfg := workload.BurstConfig{
		Leaves: benchN / 16, Storms: 4, Lanes: 2 * maxW,
		Gap: 2 * time.Millisecond,
	}
	pools := []struct {
		name     string
		min, max int
	}{
		{"fixed-min", 1, 0},
		{"fixed-max", maxW, 0},
		{"elastic", 1, maxW},
	}
	for _, pool := range pools {
		b.Run(pool.name, func(b *testing.B) {
			rt := nested.New(nested.Config{
				Workers: pool.min, MaxWorkers: pool.max, Seed: 1,
				RetireAfter: 25 * time.Millisecond,
				Topology:    topology.Flat(maxW), // pinned: see newRT
			})
			b.Cleanup(rt.Close)
			// Aggregate over all iterations (not the last run alone):
			// a single 4-storm run is short enough that scheduler noise
			// would dominate the gated metric.
			var ops uint64
			var busy time.Duration
			peak := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := workload.Burst(rt, cfg)
				ops += res.CounterOps
				busy += res.Elapsed
				if res.Workers > peak {
					peak = res.Workers
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(ops)/busy.Seconds(), "ops/s")
			b.ReportMetric(float64(peak), "peak-workers")
		})
	}
}

// BenchmarkServe — the gateway serving path (not a figure of the
// paper; see internal/gateway and `ppopp17bench -fig serve`): an
// in-process HTTP server over a fixed 2-worker runtime, driven
// open-loop by internal/workload's Uniform generator. The steady cell
// offers a fixed 100 req/s (well under capacity on any host), so its
// gated ops/s is rate-bound and host-stable; the overload cell offers
// 600 req/s against a shallow queue, so completed throughput is
// capacity-bound and the shed-rate metric (presence-gated) shows
// admission control actually refusing the excess — that metric
// vanishing from a cell means the bounded queue came unwired.
func BenchmarkServe(b *testing.B) {
	workload.CalibrateWork()
	const serviceUS = 5000
	for _, cell := range []struct {
		name string
		rate float64
	}{{"steady", 100}, {"overload", 600}} {
		b.Run(cell.name, func(b *testing.B) {
			srv := gateway.NewServer("127.0.0.1:0", gateway.Config{
				RuntimeOptions: []repro.Option{repro.WithWorkers(2), repro.WithSeed(1)},
				Dispatchers:    4,
				QueueDepth:     8,
			})
			if err := srv.Listen(); err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			served := make(chan error, 1)
			go func() { served <- srv.Serve(ctx) }()
			b.Cleanup(func() {
				cancel()
				if err := <-served; err != nil {
					b.Fatal(err)
				}
			})
			cfg := workload.ServeConfig{
				URL:      "http://" + srv.Addr(),
				Template: "spin",
				N:        serviceUS,
				Timeout:  time.Minute, // sheds must come from admission, not deadlines
				Tenants:  4,
				Rate:     cell.rate,
				Duration: 150 * time.Millisecond,
			}
			// Aggregate over iterations, like BenchmarkBurst: one window
			// is short enough that arrival jitter would dominate.
			var sent, ok, shed int
			var busy time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := workload.Uniform(cfg)
				if res.Errors > 0 {
					b.Fatalf("request errors: %+v", res)
				}
				sent += res.Sent
				ok += res.OK
				shed += res.Shed
				busy += res.Elapsed
			}
			b.StopTimer()
			b.ReportMetric(float64(ok)/busy.Seconds(), "ops/s")
			b.ReportMetric(float64(shed)/float64(sent), "shed-rate")
		})
	}
}

// BenchmarkChaosRecovery — the self-defense reap drill (not a figure
// of the paper; `ppopp17bench -fig chaos` is the full recovery
// timeline): each iteration submits one wedge-template request — a
// task body that busy-spins ignoring cancellation — with a deadline
// far shorter than its spin, requires the hung-request reaper to
// force-fail it (ErrHung / 504) at deadline+grace, waits out the
// degraded hold-down, and proves the recovered dispatcher slot by
// completing a clean request. ns/op is therefore dominated by the
// configured fuses, not by code speed; what benchgate gates is the
// presence-gated "reaped" metric (exactly 1 per iteration) — it
// vanishing or moving off 1 means the reap path came unwired.
func BenchmarkChaosRecovery(b *testing.B) {
	workload.CalibrateWork()
	reg := gateway.Builtins()
	if err := reg.Register(gateway.WedgeTemplate()); err != nil {
		b.Fatal(err)
	}
	g := gateway.New(gateway.Config{
		RuntimeOptions:   []repro.Option{repro.WithWorkers(2), repro.WithSeed(1)},
		Registry:         reg,
		Dispatchers:      4,
		ReapGrace:        20 * time.Millisecond,
		DegradedHoldDown: 5 * time.Millisecond,
		JitterSeed:       1,
	})
	b.Cleanup(func() { g.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err := g.Submit(ctx, "chaos", "wedge", 60)
		cancel()
		if !errors.Is(err, gateway.ErrHung) {
			b.Fatalf("wedge returned %v, want ErrHung", err)
		}
		for g.Degraded() {
			time.Sleep(time.Millisecond)
		}
		// No deadline: the recovery probe must never itself be reaped.
		if _, err := g.Submit(context.Background(), "chaos", "spin", 500); err != nil {
			b.Fatalf("post-reap request failed: %v", err)
		}
	}
	b.StopTimer()
	reaped := g.Stats().Reaped
	if reaped != uint64(b.N) {
		b.Fatalf("reaped %d requests over %d iterations, want exactly one each", reaped, b.N)
	}
	b.ReportMetric(float64(reaped)/float64(b.N), "reaped")
}

// BenchmarkSinkCoalescing — the run-record sink's write coalescing
// (not a figure of the paper; `ppopp17bench -fig sink` is the full
// threshold sweep): a fan-in of concurrent publishers, each completed
// run one Publish, against the default threshold. ns/op is the
// publish fast path (a shard-buffer append); the gated
// "coalesce-ratio" metric is logical writes per backend call, which
// the default threshold of 32 must hold at ≥ 16 — it collapsing
// toward 1 means coalescing came unwired and every run is paying a
// backend round-trip. The floor is asserted here (not just gated)
// once the fan-in is large enough for the ratio to be meaningful.
func BenchmarkSinkCoalescing(b *testing.B) {
	s := sink.New(sink.NewRing(1 << 16))
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := seq.Add(1)
			s.Publish(&sink.RunRecord{
				ID:       strconv.FormatUint(id, 36),
				Tenant:   "bench",
				Template: "fanin",
				Status:   sink.StatusOK,
			})
		}
	})
	b.StopTimer()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	st := s.Stats()
	if st.Dropped != 0 || st.LogicalWrites != uint64(b.N) {
		b.Fatalf("sink stats = %+v over %d publishes, want all recorded", st, b.N)
	}
	ratio := float64(st.LogicalWrites)
	if st.BackendCalls > 0 {
		ratio = float64(st.LogicalWrites) / float64(st.BackendCalls)
	}
	// Short calibration rounds flush mostly via Close and cannot hit
	// the steady-state ratio; only a real fan-in is held to the floor.
	if b.N >= 1<<14 && ratio < 16 {
		b.Fatalf("coalesce ratio %.1f < 16 (%d logical writes, %d backend calls)",
			ratio, st.LogicalWrites, st.BackendCalls)
	}
	b.ReportMetric(ratio, "coalesce-ratio")
}

// BenchmarkFig09SizeInvariance — Figure 9: in-counter throughput per
// core across input sizes. The algorithm is pinned to the paper's
// in-counter (the figure is about dyn's size invariance, so it must
// not silently follow the runtime's adaptive default).
func BenchmarkFig09SizeInvariance(b *testing.B) {
	for _, n := range []uint64{benchN / 4, benchN, benchN * 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rt := newRT(b, 0, counter.Dynamic{Threshold: nested.DefaultThreshold(runtime.GOMAXPROCS(0))})
			var res workload.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = workload.Fanin(rt, n)
			}
			b.StopTimer()
			reportFanin(b, res)
		})
	}
}

// BenchmarkFig10Indegree2 — Figure 10: the indegree2 benchmark across
// algorithms (per-finish-block allocation stress).
func BenchmarkFig10Indegree2(b *testing.B) {
	for _, algo := range []string{"fetchadd", "snzi-2", "snzi-4", "dyn"} {
		b.Run(algo, func(b *testing.B) {
			alg, err := counter.Parse(algo, nested.DefaultThreshold(2))
			if err != nil {
				b.Fatal(err)
			}
			rt := newRT(b, 0, alg)
			var res workload.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = workload.Indegree2(rt, benchN)
			}
			b.StopTimer()
			reportFanin(b, res)
		})
	}
}

// BenchmarkFig11Threshold — Figure 11: the grow-probability threshold
// study.
func BenchmarkFig11Threshold(b *testing.B) {
	for _, th := range []uint64{10, 100, 1000, 100000} {
		b.Run(fmt.Sprintf("th=%d", th), func(b *testing.B) {
			rt := newRT(b, 0, counter.Dynamic{Threshold: th})
			var res workload.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = workload.Fanin(rt, benchN)
			}
			b.StopTimer()
			reportFanin(b, res)
		})
	}
}

// BenchmarkFig12SnziRepro — Figure 12 (appendix C.1): the original
// SNZI paper's raw arrive/depart stress test.
func BenchmarkFig12SnziRepro(b *testing.B) {
	const ops = 1 << 14
	for _, cfg := range []struct {
		name  string
		depth int
	}{{"fetchadd", -1}, {"snzi-2", 2}, {"snzi-5", 5}} {
		for _, p := range procsAxis() {
			b.Run(fmt.Sprintf("%s/p=%d", cfg.name, p), func(b *testing.B) {
				var res workload.Result
				for i := 0; i < b.N; i++ {
					res = workload.SnziStress(p, cfg.depth, ops)
				}
				b.ReportMetric(res.OpsPerSecPerCore(), "ops/s/core")
			})
		}
	}
}

// BenchmarkFig13Topology — Figure 13 (appendix C.2) on the real
// scheduler: fanin under a flat topology vs a synthetic 2-node
// topology, with the counter algorithm pinned explicitly per cell
// (nothing follows the runtime default). Beyond ops/s/core, each cell
// reports the per-iteration local/remote steal split — the mechanism
// benchgate gates: the locality counters vanishing from a cell means
// the topology layer came unwired.
func BenchmarkFig13Topology(b *testing.B) {
	const workers = 2
	topos := []struct {
		name string
		topo topology.Topology
	}{
		{"flat", topology.Flat(workers)},
		{"2-node", topology.Synthetic(2, 1)},
	}
	for _, tp := range topos {
		for _, algo := range []string{"fetchadd", "dyn"} {
			b.Run(fmt.Sprintf("%s/%s", tp.name, algo), func(b *testing.B) {
				alg, err := counter.Parse(algo, nested.DefaultThreshold(workers))
				if err != nil {
					b.Fatal(err)
				}
				rt := nested.New(nested.Config{Workers: workers, Algorithm: alg, Seed: 1, Topology: tp.topo})
				b.Cleanup(rt.Close)
				sc := rt.Scheduler()
				st0 := sc.Stats()
				var res workload.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res = workload.Fanin(rt, benchN)
				}
				b.StopTimer()
				reportFanin(b, res)
				st := sc.Stats()
				b.ReportMetric(float64(st.LocalSteals-st0.LocalSteals)/float64(b.N), "local-steals")
				b.ReportMetric(float64(st.RemoteSteals-st0.RemoteSteals)/float64(b.N), "remote-steals")
			})
		}
	}
}

// BenchmarkFig13NumaProxy — the pre-topology Figure 13: the NUMA
// placement study through the simulated-penalty proxy
// (fanin-numa-proxy). Kept alongside BenchmarkFig13Topology for hosts
// where only the timing shape is wanted; the check is a null result
// (policy must not reorder algorithms). Workers and the counter
// algorithm are pinned explicitly so no cell follows the runtime
// default.
func BenchmarkFig13NumaProxy(b *testing.B) {
	const workers = 2
	for _, policy := range []workload.NumaPolicy{workload.NumaOff, workload.NumaRoundRobin, workload.NumaFirstTouch} {
		for _, algo := range []string{"fetchadd", "dyn"} {
			b.Run(fmt.Sprintf("%s/%s", policy, algo), func(b *testing.B) {
				alg, err := counter.Parse(algo, nested.DefaultThreshold(workers))
				if err != nil {
					b.Fatal(err)
				}
				rt := newRT(b, workers, alg)
				var res workload.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res = workload.FaninNUMA(rt, benchN, policy)
				}
				b.StopTimer()
				reportFanin(b, res)
			})
		}
	}
}

// BenchmarkFig14Granularity — Figure 14 (appendix C.3): fanin with
// calibrated dummy work per task.
func BenchmarkFig14Granularity(b *testing.B) {
	workload.CalibrateWork()
	for _, work := range []int{1, 100, 10000} {
		for _, algo := range []string{"fetchadd", "snzi-4", "dyn"} {
			b.Run(fmt.Sprintf("work=%dns/%s", work, algo), func(b *testing.B) {
				alg, err := counter.Parse(algo, nested.DefaultThreshold(2))
				if err != nil {
					b.Fatal(err)
				}
				rt := newRT(b, 0, alg)
				var res workload.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res = workload.FaninWork(rt, benchN/4, work)
				}
				b.StopTimer()
				reportFanin(b, res)
			})
		}
	}
}

// BenchmarkFig15SpeedupCurves — Figures 15a-e: cores sweep at a fixed
// work level (speedups are computed across the reported times).
func BenchmarkFig15SpeedupCurves(b *testing.B) {
	workload.CalibrateWork()
	const work = 1000
	for _, algo := range []string{"fetchadd", "dyn"} {
		for _, p := range procsAxis() {
			b.Run(fmt.Sprintf("%s/p=%d", algo, p), func(b *testing.B) {
				alg, err := counter.Parse(algo, nested.DefaultThreshold(p))
				if err != nil {
					b.Fatal(err)
				}
				rt := newRT(b, p, alg)
				var res workload.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res = workload.FaninWork(rt, benchN/4, work)
				}
				b.StopTimer()
				reportFanin(b, res)
			})
		}
	}
}

// BenchmarkStallModel — the Theorem 4.8/4.9 experiment: contention
// (stalls per counter op) in the simulated shared-memory model, with
// simulated processor counts far beyond the host.
func BenchmarkStallModel(b *testing.B) {
	algos := []struct {
		name string
		alg  stallsim.SimAlgorithm
	}{
		{"fetchadd", stallsim.FetchAdd{}},
		{"snzi-4", stallsim.FixedSNZI{Depth: 4}},
		{"dyn", stallsim.Dynamic{Threshold: 1}},
	}
	for _, a := range algos {
		for _, p := range []int{4, 32, 128} {
			b.Run(fmt.Sprintf("%s/P=%d", a.name, p), func(b *testing.B) {
				var res stallsim.FaninResult
				for i := 0; i < b.N; i++ {
					res = stallsim.RunFanin(stallsim.FaninConfig{
						Threads: p, N: 512, Algorithm: a.alg, Seed: uint64(i)})
				}
				b.ReportMetric(res.StallsPerOp(), "stalls/op")
				b.ReportMetric(res.StepsPerOp(), "steps/op")
			})
		}
	}
}

// BenchmarkAblationGrowProbability — DESIGN.md A1: p = 1 vs
// probabilistic growth (contention vs allocation trade).
func BenchmarkAblationGrowProbability(b *testing.B) {
	for _, th := range []uint64{1, 50, 5000} {
		b.Run(fmt.Sprintf("th=%d", th), func(b *testing.B) {
			rt := newRT(b, 0, counter.Dynamic{Threshold: th})
			var res workload.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = workload.Fanin(rt, benchN)
			}
			b.StopTimer()
			reportFanin(b, res)
		})
	}
}

// BenchmarkAblationDecOrder — DESIGN.md A2: the ordered shared
// decrement pairs vs the naive (reversed) order.
func BenchmarkAblationDecOrder(b *testing.B) {
	for _, v := range []struct {
		name    string
		variant core.Variant
	}{{"paper", core.VariantPaper}, {"naive", core.VariantNaiveDecOrder}} {
		b.Run(v.name, func(b *testing.B) {
			rt := newRT(b, 0, counter.Dynamic{Threshold: 1, Variant: v.variant})
			var res workload.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = workload.Fanin(rt, benchN)
			}
			b.StopTimer()
			reportFanin(b, res)
		})
	}
}

// BenchmarkAblationArriveTarget — DESIGN.md A3: arrive at the freshly
// grown child (leaves-only-zero invariant) vs at the handle node.
func BenchmarkAblationArriveTarget(b *testing.B) {
	for _, v := range []struct {
		name    string
		variant core.Variant
	}{{"paper", core.VariantPaper}, {"at-handle", core.VariantArriveAtHandle}} {
		b.Run(v.name, func(b *testing.B) {
			rt := newRT(b, 0, counter.Dynamic{Threshold: 1, Variant: v.variant})
			var res workload.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = workload.Fanin(rt, benchN)
			}
			b.StopTimer()
			reportFanin(b, res)
		})
	}
}

// BenchmarkSNZIArriveDepart — microbenchmark of the raw SNZI
// protocol (single thread, no runtime).
func BenchmarkSNZIArriveDepart(b *testing.B) {
	tree := snzi.NewTree(1)
	leaf, _ := tree.Root().Grow(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf.Arrive()
		leaf.Depart()
	}
}

// BenchmarkInCounterIncDec — microbenchmark of one in-counter
// increment + decrement pair through the core API.
func BenchmarkInCounterIncDec(b *testing.B) {
	c := core.New(1)
	s := c.RootState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, r := s.Increment(true)
		r.Decrement()
		s = l
	}
}

// BenchmarkFetchAddIncDec — the baseline pair for comparison.
func BenchmarkFetchAddIncDec(b *testing.B) {
	c := counter.FetchAdd{}.New(1)
	s := c.RootState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, _ := s.Increment(nil)
		l.Decrement()
	}
}

// BenchmarkAblationPruning — §B space management on vs off: the cost
// of reclaiming quiesced subtrees and its effect on live tree size.
func BenchmarkAblationPruning(b *testing.B) {
	for _, prune := range []bool{false, true} {
		name := "off"
		if prune {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			rt := newRT(b, 0, counter.Dynamic{Threshold: 1, Prune: prune})
			var res workload.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = workload.Fanin(rt, benchN)
			}
			b.StopTimer()
			reportFanin(b, res)
		})
	}
}

// BenchmarkSim — the discrete-event scheduler replay (`ppopp17bench
// -fig sim`; internal/sim): the scheduler's decision logic stepped at
// 1024 simulated workers, far beyond any runner. ns/op is the
// simulator's own speed and is not gated; every reported metric is a
// pure function of (seed, config) — identical on every run, every
// host, every GOMAXPROCS — so CI gates these cells with benchgate
// -exact-metrics against bench/baseline_sim.txt: any drift, even by
// one steal, means the modeled decision logic changed and the
// baseline must be regenerated in the same commit that changed it.
func BenchmarkSim(b *testing.B) {
	const workers = 1024
	burst := func(n, d int) []sim.Arrival {
		arr := make([]sim.Arrival, n)
		for i := range arr {
			arr[i] = sim.Arrival{Tick: i / 32, Depth: d}
		}
		return arr
	}
	type cell struct {
		name string
		cfg  sim.Config
	}
	var cells []cell
	for _, pol := range []sched.Policy{sched.ChaseLev, sched.PrivateDeques} {
		cells = append(cells,
			cell{fmt.Sprintf("%s/flat", pol), sim.Config{Workers: workers, Policy: pol, Seed: 1,
				Topo: topology.Flat(workers), Arrivals: burst(4, 12)}},
			cell{fmt.Sprintf("%s/8-node", pol), sim.Config{Workers: workers, Policy: pol, Seed: 1,
				Topo: topology.Synthetic(8, workers/8), Arrivals: burst(4, 12)}},
			cell{fmt.Sprintf("%s/elastic", pol), sim.Config{Workers: 16, MaxWorkers: workers,
				Policy: pol, Seed: 1, RetireAfterTicks: 16, Topo: topology.Flat(workers),
				Arrivals: burst(128, 9)}},
		)
	}
	for _, cell := range cells {
		b.Run(cell.name, func(b *testing.B) {
			cfg := cell.cfg
			var res sim.Result
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if res.Truncated {
				b.Fatalf("truncated at %d ticks", res.Ticks)
			}
			b.ReportMetric(float64(res.Ticks), "ticks")
			b.ReportMetric(float64(res.Executed), "executed")
			b.ReportMetric(float64(res.LocalSteals), "local-steals")
			b.ReportMetric(float64(res.RemoteSteals), "remote-steals")
			b.ReportMetric(float64(res.Promotions), "promotions")
			if cfg.MaxWorkers > cfg.Workers {
				b.ReportMetric(float64(res.Spawned), "spawned")
				b.ReportMetric(float64(res.Retired), "retired")
				b.ReportMetric(float64(res.PeakLive), "peak-workers")
				b.ReportMetric(float64(res.SteadyLive), "steady-workers")
			}
		})
	}
}

// BenchmarkSchedulerPolicy compares the two stealing mechanisms —
// concurrent Chase-Lev deques vs the paper's private deques with
// receiver-initiated communication ([2]) — on the fanin workload.
func BenchmarkSchedulerPolicy(b *testing.B) {
	for _, policy := range []sched.Policy{sched.ChaseLev, sched.PrivateDeques} {
		b.Run(policy.String(), func(b *testing.B) {
			rt := nested.New(nested.Config{Workers: 0, Seed: 1, Policy: policy,
				Topology: topology.Flat(runtime.GOMAXPROCS(0))}) // pinned: see newRT
			b.Cleanup(rt.Close)
			var res workload.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = workload.Fanin(rt, benchN)
			}
			b.StopTimer()
			reportFanin(b, res)
		})
	}
}
