package repro

// Typed results over the async/finish runtime: futures, value-bearing
// runs, and parallel reductions.
//
// The runtime is continuation-passing — a task's parallel children
// complete after the task function itself returns, and the only join
// points are finish blocks. Values therefore flow out of parallel code
// through memory written before a join, and every typed helper here is
// shaped around that rule: a Future is readable after the enclosing
// finish joins it, RunValue's result pointer is readable after Run's
// top-level finish, and ParallelReduce delivers the total to a
// continuation (or to the Run caller) strictly after the reduction
// tree has joined.

import (
	"context"
	"sync/atomic"

	"repro/internal/spdag"
)

// Future is the typed result of a task started with Go. It is resolved
// when the task function returns (or fails); the enclosing finish
// block is the synchronization point that makes it readable.
type Future[T any] struct {
	val  T
	err  error
	done atomic.Bool
	comp *spdag.Computation // the computation's stable record, for its Err
}

// Go starts f as a new task joining at the innermost enclosing finish
// block (exactly like Ctx.Async) and returns a Future for its result.
// A non-nil error from f cancels the enclosing computation,
// errgroup-style, as does a panic in f (which additionally resolves
// the Future with the *PanicError).
//
// If the computation has already been cancelled, nothing is spawned
// and the Future comes back already resolved with the cancellation
// error. The same holds when the computation is cancelled after the
// spawn but before the task runs — its body is skipped, and Result
// reports the computation's error instead.
func Go[T any](c *Ctx, f func(c *Ctx) (T, error)) *Future[T] {
	// The Future outlives the task's vertices (it is read after the
	// enclosing finish, typically after Run returns), so it holds the
	// computation record — vertices are recycled storage by then. The
	// accessor is live-checked: Go on a consumed or retained Ctx panics
	// with the misuse diagnostic instead of attaching the Future to
	// recycled storage.
	fut := &Future[T]{comp: c.Computation()}
	spawned := c.TryAsync(func(c *Ctx) {
		defer func() {
			if p := recover(); p != nil {
				err := spdag.AsPanicError(p)
				fut.err = err
				fut.done.Store(true)
				c.Fail(err)
				return
			}
			fut.done.Store(true)
		}()
		v, err := f(c)
		fut.val, fut.err = v, err
		if err != nil {
			c.Fail(err)
		}
	})
	if !spawned {
		fut.err = c.Err()
		fut.done.Store(true)
	}
	return fut
}

// Result returns the task's value and error. It must only be called
// after the finish block enclosing the Go has joined (e.g. in a
// FinishThen continuation, or after Run returns); calling it earlier
// is a structured-concurrency misuse and panics deterministically
// instead of racing. If the computation was cancelled before the task
// could run — so the task was skipped and never produced a value —
// Result returns the zero value and the computation's error.
func (f *Future[T]) Result() (T, error) {
	if !f.done.Load() {
		if err := f.comp.Err(); err != nil {
			var zero T
			return zero, err
		}
		panic("repro: Future.Result before the enclosing finish joined the task")
	}
	return f.val, f.err
}

// Resolved reports whether the Future's task has completed or its
// computation was cancelled before it could run. It is a probe; the
// reliable synchronization point is the enclosing finish.
func (f *Future[T]) Resolved() bool { return f.done.Load() || f.comp.Err() != nil }

// RunValue executes f as a complete computation on rt and returns the
// value it deposited: f receives a pointer to the result slot, which
// it (or any continuation it creates — the usual pattern writes it in
// a ForkJoinThen/FinishThen continuation) must fill before its
// top-level finish joins. A non-nil error from f cancels the
// computation. RunValue returns the first error of the computation
// with the zero-value contract of errgroup: on error, the result is
// whatever was deposited before cancellation and should not be
// trusted.
func RunValue[T any](rt *Runtime, f func(c *Ctx, result *T) error) (T, error) {
	return RunValueContext(context.Background(), rt, f)
}

// RunValueContext is RunValue under a context (see RunContext).
func RunValueContext[T any](ctx context.Context, rt *Runtime, f func(c *Ctx, result *T) error) (T, error) {
	var out T
	err := rt.RunContext(ctx, func(c *Ctx) {
		if e := f(c, &out); e != nil {
			c.Fail(e)
		}
	})
	return out, err
}

// ParallelReduce computes leaf over disjoint chunks of [lo, hi) of at
// most grain indices each, in parallel, and folds the chunk values
// with combine, which must be associative (leaf chunks stay in index
// order along each combine, so it need not be commutative). It runs as
// one complete computation on rt:
//
//	total, err := repro.ParallelReduce(rt, 0, len(xs), 4096,
//	    func(lo, hi int) int64 {
//	        var s int64
//	        for i := lo; i < hi; i++ { s += xs[i] }
//	        return s
//	    },
//	    func(a, b int64) int64 { return a + b })
func ParallelReduce[T any](rt *Runtime, lo, hi, grain int, leaf func(lo, hi int) T, combine func(a, b T) T) (T, error) {
	return RunValue(rt, func(c *Ctx, result *T) error {
		ParallelReduceThen(c, lo, hi, grain, leaf, combine,
			func(_ *Ctx, total T) { *result = total })
		return nil
	})
}

// ParallelReduceThen is the composable, mid-computation form of
// ParallelReduce: it reduces [lo, hi) inside a fresh finish block and
// passes the total to then once the reduction tree has joined. It is a
// tail operation — it consumes c, and the caller's task ends when then
// returns.
func ParallelReduceThen[T any](c *Ctx, lo, hi, grain int, leaf func(lo, hi int) T, combine func(a, b T) T, then func(c *Ctx, total T)) {
	if grain < 1 {
		grain = 1
	}
	out := new(T)
	c.FinishThen(func(c *Ctx) {
		if hi > lo {
			reduceRec(c, lo, hi, grain, leaf, combine, out)
		}
	}, func(c *Ctx) {
		then(c, *out)
	})
}

// reduceRec splits [lo, hi) by ForkJoin down to grain-sized chunks,
// combining results in continuations as the halves join.
func reduceRec[T any](c *Ctx, lo, hi, grain int, leaf func(lo, hi int) T, combine func(a, b T) T, out *T) {
	if hi-lo <= grain {
		*out = leaf(lo, hi)
		return
	}
	mid := lo + (hi-lo)/2
	var a, b T
	c.ForkJoinThen(
		func(c *Ctx) { reduceRec(c, lo, mid, grain, leaf, combine, &a) },
		func(c *Ctx) { reduceRec(c, mid, hi, grain, leaf, combine, &b) },
		func(*Ctx) { *out = combine(a, b) },
	)
}
