// Fib is the paper's running example (Figure 4): the classic parallel
// Fibonacci, spawning both recursive calls and joining at a finish
// point. It demonstrates fork/join over the sp-dag runtime and lets
// you compare dependency-counter algorithms:
//
//	go run ./examples/fib -n 30 -algo dyn
//	go run ./examples/fib -n 30 -algo fetchadd
//	go run ./examples/fib -n 30 -algo snzi-4
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func fib(c *repro.Ctx, n int, dest *uint64) {
	if n <= 1 {
		*dest = uint64(n)
		return
	}
	var a, b uint64
	c.ForkJoinThen(
		func(c *repro.Ctx) { fib(c, n-1, &a) },
		func(c *repro.Ctx) { fib(c, n-2, &b) },
		func(*repro.Ctx) { *dest = a + b },
	)
}

func fibSeq(n int) uint64 {
	a, b := uint64(0), uint64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

func main() {
	var (
		n       = flag.Int("n", 27, "Fibonacci index")
		algo    = flag.String("algo", "dyn", "dependency counter: fetchadd | dyn | snzi-D")
		workers = flag.Int("procs", 0, "workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	alg, err := repro.ParseAlgorithm(*algo, repro.DefaultThreshold(*workers))
	if err != nil {
		log.Fatal(err)
	}
	rt := repro.NewRuntime(repro.WithWorkers(*workers), repro.WithAlgorithm(alg))
	defer rt.Close()

	start := time.Now()
	result, err := repro.RunValue(rt, func(c *repro.Ctx, out *uint64) error {
		fib(c, *n, out)
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}

	if want := fibSeq(*n); result != want {
		log.Fatalf("fib(%d) = %d, want %d", *n, result, want)
	}
	st := rt.Stats()
	fmt.Printf("fib(%d) = %d  [algo=%s workers=%d time=%v vertices=%d]\n",
		*n, result, *algo, st.Workers, elapsed, st.Vertices)
}
