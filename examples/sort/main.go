// Sort is a realistic nested-parallel application on the public API: a
// parallel mergesort whose recursive splits are ForkJoins and whose
// merge phase runs the two halves' merges in parallel too. It is the
// kind of divide-and-conquer workload the paper's introduction
// motivates: the number of fine-grained tasks depends on the input
// size, so the runtime's dependency counters must grow and shrink
// dynamically — a static SNZI tree or a single atomic cell serves it
// poorly.
//
//	go run ./examples/sort -n 2000000
//	go run ./examples/sort -n 2000000 -algo fetchadd
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"repro"
)

const grain = 1 << 13

func mergesort(c *repro.Ctx, xs, buf []int32) {
	if len(xs) <= grain {
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		return
	}
	mid := len(xs) / 2
	c.ForkJoinThen(
		func(c *repro.Ctx) { mergesort(c, xs[:mid], buf[:mid]) },
		func(c *repro.Ctx) { mergesort(c, xs[mid:], buf[mid:]) },
		func(c *repro.Ctx) { merge(c, xs, mid, buf) },
	)
}

// merge merges the two sorted halves of xs through buf, splitting the
// merge itself in parallel around the median.
func merge(c *repro.Ctx, xs []int32, mid int, buf []int32) {
	left, right := xs[:mid], xs[mid:]
	if len(xs) <= 2*grain {
		seqMerge(left, right, buf)
		copy(xs, buf[:len(xs)])
		return
	}
	// Split: take the middle of the larger half, binary-search its
	// counterpart in the other, merge the two quadrant pairs in
	// parallel.
	i := len(left) / 2
	j := sort.Search(len(right), func(k int) bool { return right[k] >= left[i] })
	c.ForkJoinThen(
		func(*repro.Ctx) {
			seqMerge(left[:i], right[:j], buf[:i+j])
		},
		func(*repro.Ctx) {
			seqMerge(left[i:], right[j:], buf[i+j:len(xs)])
		},
		func(*repro.Ctx) {
			copy(xs, buf[:len(xs)])
		},
	)
}

func seqMerge(a, b, out []int32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

func main() {
	var (
		n       = flag.Int("n", 1<<21, "elements to sort")
		algo    = flag.String("algo", "dyn", "dependency counter: fetchadd | dyn | snzi-D")
		workers = flag.Int("procs", 0, "workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	alg, err := repro.ParseAlgorithm(*algo, repro.DefaultThreshold(*workers))
	if err != nil {
		log.Fatal(err)
	}
	rt := repro.NewRuntime(repro.WithWorkers(*workers), repro.WithAlgorithm(alg))
	defer rt.Close()

	xs := make([]int32, *n)
	rnd := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rnd.Int31()
	}
	buf := make([]int32, *n)

	start := time.Now()
	if err := rt.Run(func(c *repro.Ctx) { mergesort(c, xs, buf) }); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if !sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }) {
		log.Fatal("output not sorted")
	}
	st := rt.Stats()
	fmt.Printf("sorted %d int32s in %v  [algo=%s workers=%d vertices=%d]\n",
		*n, elapsed, *algo, st.Workers, st.Vertices)
}
