// Quickstart: the smallest useful program against the public API.
//
// It doubles a slice in parallel on the package-level default runtime,
// then creates an explicit runtime (work-stealing scheduler + sp-dag +
// in-counter dependency tracking), sums the slice with a typed
// parallel reduction, and prints runtime statistics. With -maxworkers
// the explicit runtime's pool is elastic: it grows from -workers up to
// the ceiling under a burst of concurrent computations and retires the
// extra workers once the burst is over — the spawn/retire counters
// printed at the end show the movement. With -topology the scheduler's
// locality map is set explicitly: workers steal from same-node victims
// first and the local/remote steal split is printed with the stats.
// Run with:
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -workers 1 -maxworkers 8
//	go run ./examples/quickstart -workers 4 -topology 2x2
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"repro"
)

// parseTopology maps the -topology flag to a repro.Topology:
// "auto" (detect the host, flat on non-NUMA machines), "flat"
// (explicitly locality-blind), or "NxS" for a synthetic topology of N
// nodes × S slots per node (e.g. "2x2") — the way to watch the
// two-phase steal order work on a host without NUMA hardware.
func parseTopology(spec string, workers int) (repro.Topology, error) {
	switch spec {
	case "", "auto":
		return repro.DetectTopology(), nil
	case "flat":
		return repro.FlatTopology(workers), nil
	}
	var nodes, slots int
	if _, err := fmt.Sscanf(spec, "%dx%d", &nodes, &slots); err != nil || nodes < 1 || slots < 1 ||
		spec != fmt.Sprintf("%dx%d", nodes, slots) {
		return repro.Topology{}, fmt.Errorf("bad -topology %q (want auto, flat, or NxS like 2x2)", spec)
	}
	return repro.SyntheticTopology(nodes, slots), nil
}

func main() {
	var (
		workers    = flag.Int("workers", 0, "worker-pool floor (0 = GOMAXPROCS)")
		maxworkers = flag.Int("maxworkers", 0, "worker-pool ceiling; > workers makes the pool elastic (0 = fixed)")
		topoSpec   = flag.String("topology", "auto", "locality map: auto | flat | NxS synthetic (e.g. 2x2)")
	)
	flag.Parse()

	const n = 1 << 20
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i)
	}

	// Parallel map on the default runtime: double every element.
	// ParallelFor splits the index range recursively down to the grain
	// and joins before returning control past the finish block. Run
	// variants return the computation's first error (a recovered task
	// panic, a Ctx.Fail, or a cancelled context).
	if err := repro.Do(func(c *repro.Ctx) {
		c.ParallelFor(0, n, 4096, func(i int) { xs[i] *= 2 })
	}); err != nil {
		log.Fatal(err)
	}

	topo, err := parseTopology(*topoSpec, *workers)
	if err != nil {
		log.Fatal(err)
	}

	// Typed parallel reduction on an explicit runtime: sum the slice
	// with divide-and-conquer ForkJoins under the hood.
	rt := repro.NewRuntime(
		repro.WithWorkers(*workers),
		repro.WithMaxWorkers(*maxworkers),
		repro.WithTopology(topo),
	)
	defer rt.Close()

	total, err := repro.ParallelReduce(rt, 0, n, 4096,
		func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			return s
		},
		func(a, b int64) int64 { return a + b })
	if err != nil {
		log.Fatal(err)
	}

	want := int64(n) * int64(n-1) // sum of 2i for i in [0,n)
	if total != want {
		log.Fatalf("sum = %d, want %d", total, want)
	}
	st := rt.Stats()
	fmt.Printf("sum of doubled [0,%d) = %d\n", n, total)
	topoDesc := strings.TrimPrefix(rt.Scheduler().Topology().String(), "topology.")
	fmt.Printf("topology=%s\n", topoDesc)
	fmt.Printf("workers=%d vertices=%d steals=%d (local=%d remote=%d)\n",
		st.Workers, st.Vertices, st.Steals, st.LocalSteals, st.RemoteSteals)

	if *maxworkers <= 0 {
		return
	}
	// Elastic demo: a burst of concurrent computations (each Run
	// injects its own root, and sustained injector backlog is the
	// spawn signal) grows the pool toward the ceiling; once the burst
	// ends, workers that stay parked retire back to the floor.
	var wg sync.WaitGroup
	for lane := 0; lane < 2*(*maxworkers); lane++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := rt.Run(func(c *repro.Ctx) {
				c.ParallelFor(0, n/8, 1024, func(i int) { xs[i] += 1 })
			}); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	st = rt.Stats()
	fmt.Printf("after burst:   workers=%d spawned=%d retired=%d\n",
		st.Workers, st.SpawnedWorkers, st.RetiredWorkers)
	time.Sleep(500 * time.Millisecond) // outlast the retirement threshold
	st = rt.Stats()
	fmt.Printf("after quiesce: workers=%d spawned=%d retired=%d\n",
		st.Workers, st.SpawnedWorkers, st.RetiredWorkers)
}
