// Quickstart: the smallest useful program against the public API.
//
// It creates a runtime (work-stealing scheduler + sp-dag + in-counter
// dependency tracking), doubles a slice in parallel, sums it with a
// parallel divide-and-conquer reduction, and prints runtime
// statistics. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rt := repro.NewRuntime(repro.Config{}) // GOMAXPROCS workers, in-counter with the paper's threshold
	defer rt.Close()

	const n = 1 << 20
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i)
	}

	// Parallel map: double every element. ParallelFor splits the index
	// range recursively down to the grain and joins before returning
	// control past the finish block.
	rt.Run(func(c *repro.Ctx) {
		c.ParallelFor(0, n, 4096, func(i int) { xs[i] *= 2 })
	})

	// Parallel reduction: divide-and-conquer sum with ForkJoin.
	var sum func(c *repro.Ctx, lo, hi int, out *int64)
	sum = func(c *repro.Ctx, lo, hi int, out *int64) {
		if hi-lo <= 4096 {
			var s int64
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			*out = s
			return
		}
		mid := (lo + hi) / 2
		var a, b int64
		c.ForkJoinThen(
			func(c *repro.Ctx) { sum(c, lo, mid, &a) },
			func(c *repro.Ctx) { sum(c, mid, hi, &b) },
			func(*repro.Ctx) { *out = a + b },
		)
	}
	var total int64
	rt.Run(func(c *repro.Ctx) { sum(c, 0, n, &total) })

	want := int64(n) * int64(n-1) // sum of 2i for i in [0,n)
	if total != want {
		log.Fatalf("sum = %d, want %d", total, want)
	}
	st := rt.Scheduler().Stats()
	fmt.Printf("sum of doubled [0,%d) = %d\n", n, total)
	fmt.Printf("workers=%d vertices=%d steals=%d\n", rt.Workers(), rt.Dag().VertexCount(), st.Steals)
}
