// Quickstart: the smallest useful program against the public API.
//
// It doubles a slice in parallel on the package-level default runtime,
// then creates an explicit runtime (work-stealing scheduler + sp-dag +
// in-counter dependency tracking), sums the slice with a typed
// parallel reduction, and prints runtime statistics. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 1 << 20
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i)
	}

	// Parallel map on the default runtime: double every element.
	// ParallelFor splits the index range recursively down to the grain
	// and joins before returning control past the finish block. Run
	// variants return the computation's first error (a recovered task
	// panic, a Ctx.Fail, or a cancelled context).
	if err := repro.Do(func(c *repro.Ctx) {
		c.ParallelFor(0, n, 4096, func(i int) { xs[i] *= 2 })
	}); err != nil {
		log.Fatal(err)
	}

	// Typed parallel reduction on an explicit runtime: sum the slice
	// with divide-and-conquer ForkJoins under the hood.
	rt := repro.NewRuntime(repro.WithWorkers(0)) // 0 = GOMAXPROCS
	defer rt.Close()

	total, err := repro.ParallelReduce(rt, 0, n, 4096,
		func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			return s
		},
		func(a, b int64) int64 { return a + b })
	if err != nil {
		log.Fatal(err)
	}

	want := int64(n) * int64(n-1) // sum of 2i for i in [0,n)
	if total != want {
		log.Fatalf("sum = %d, want %d", total, want)
	}
	st := rt.Stats()
	fmt.Printf("sum of doubled [0,%d) = %d\n", n, total)
	fmt.Printf("workers=%d vertices=%d steals=%d\n", st.Workers, st.Vertices, st.Steals)
}
