// Quickstart: the smallest useful program against the public API.
//
// It doubles a slice in parallel on the package-level default runtime,
// then creates an explicit runtime (work-stealing scheduler + sp-dag +
// in-counter dependency tracking), sums the slice with a typed
// parallel reduction, and prints runtime statistics. With -maxworkers
// the explicit runtime's pool is elastic: it grows from -workers up to
// the ceiling under a burst of concurrent computations and retires the
// extra workers once the burst is over — the spawn/retire counters
// printed at the end show the movement. Run with:
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -workers 1 -maxworkers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
)

func main() {
	var (
		workers    = flag.Int("workers", 0, "worker-pool floor (0 = GOMAXPROCS)")
		maxworkers = flag.Int("maxworkers", 0, "worker-pool ceiling; > workers makes the pool elastic (0 = fixed)")
	)
	flag.Parse()

	const n = 1 << 20
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i)
	}

	// Parallel map on the default runtime: double every element.
	// ParallelFor splits the index range recursively down to the grain
	// and joins before returning control past the finish block. Run
	// variants return the computation's first error (a recovered task
	// panic, a Ctx.Fail, or a cancelled context).
	if err := repro.Do(func(c *repro.Ctx) {
		c.ParallelFor(0, n, 4096, func(i int) { xs[i] *= 2 })
	}); err != nil {
		log.Fatal(err)
	}

	// Typed parallel reduction on an explicit runtime: sum the slice
	// with divide-and-conquer ForkJoins under the hood.
	rt := repro.NewRuntime(
		repro.WithWorkers(*workers),
		repro.WithMaxWorkers(*maxworkers),
	)
	defer rt.Close()

	total, err := repro.ParallelReduce(rt, 0, n, 4096,
		func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			return s
		},
		func(a, b int64) int64 { return a + b })
	if err != nil {
		log.Fatal(err)
	}

	want := int64(n) * int64(n-1) // sum of 2i for i in [0,n)
	if total != want {
		log.Fatalf("sum = %d, want %d", total, want)
	}
	st := rt.Stats()
	fmt.Printf("sum of doubled [0,%d) = %d\n", n, total)
	fmt.Printf("workers=%d vertices=%d steals=%d\n", st.Workers, st.Vertices, st.Steals)

	if *maxworkers <= 0 {
		return
	}
	// Elastic demo: a burst of concurrent computations (each Run
	// injects its own root, and sustained injector backlog is the
	// spawn signal) grows the pool toward the ceiling; once the burst
	// ends, workers that stay parked retire back to the floor.
	var wg sync.WaitGroup
	for lane := 0; lane < 2*(*maxworkers); lane++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := rt.Run(func(c *repro.Ctx) {
				c.ParallelFor(0, n/8, 1024, func(i int) { xs[i] += 1 })
			}); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	st = rt.Stats()
	fmt.Printf("after burst:   workers=%d spawned=%d retired=%d\n",
		st.Workers, st.SpawnedWorkers, st.RetiredWorkers)
	time.Sleep(500 * time.Millisecond) // outlast the retirement threshold
	st = rt.Stats()
	fmt.Printf("after quiesce: workers=%d spawned=%d retired=%d\n",
		st.Workers, st.SpawnedWorkers, st.RetiredWorkers)
}
