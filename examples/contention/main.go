// Contention demonstrates the paper's central theoretical claim
// (Theorems 4.8/4.9) in the very model it is stated in: it runs the
// fanin workload in the simulated shared-memory stall model and prints
// stalls per counter operation as the simulated processor count grows.
//
// The fetch-and-add cell shows the Θ(P) contention of the
// general-concurrency lower bounds; the paper's in-counter stays flat
// — amortized O(1) — because the structured (series-parallel)
// discipline lets each operation touch mostly-private SNZI nodes.
//
// A second section runs the real runtime on the phase-shift workload
// (a low-contention prologue into a fan-in storm) under a configurable
// counter spec, and — for the contention-adaptive counter — prints
// which algorithm each run settled on: the fetch-and-add cell it was
// born as, or the in-counter it promoted to when the storm hit.
//
//	go run ./examples/contention
//	go run ./examples/contention -n 8192 -max 512
//	go run ./examples/contention -algo adaptive:8 -workers 4
//	go run ./examples/contention -algo dyn           # force the in-counter
//	go run ./examples/contention -workers 1 -maxworkers 4  # elastic pool
//
// With -maxworkers the live demo's worker pool is elastic (floor
// -workers, growing under sustained backlog, retiring after idling);
// the demo then runs the phase-shift storm on several concurrent lanes
// so the backlog actually materializes, and prints the spawn/retire
// counters next to the promotion verdict.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro"
	"repro/internal/stallsim"
	"repro/internal/workload"
)

func main() {
	var (
		n          = flag.Uint64("n", 2048, "fanin leaf count")
		max        = flag.Int("max", 256, "largest simulated processor count")
		algo       = flag.String("algo", "adaptive", "counter spec for the live demo: adaptive[:K] | dyn | fetchadd | snzi-D")
		workers    = flag.Int("workers", 0, "workers for the live demo (0 = GOMAXPROCS)")
		maxworkers = flag.Int("maxworkers", 0, "worker-pool ceiling for the live demo; > workers makes the pool elastic (0 = fixed)")
	)
	flag.Parse()

	algos := []stallsim.SimAlgorithm{
		stallsim.FetchAdd{},
		stallsim.FixedSNZI{Depth: 4},
		stallsim.Dynamic{Threshold: 1},
	}

	fmt.Printf("fanin (n=%d) in the Fich et al. stall model — stalls per counter operation\n\n", *n)
	fmt.Printf("%-12s", "P")
	for _, a := range algos {
		fmt.Printf("%12s", a.Name())
	}
	fmt.Println()
	for p := 1; p <= *max; p *= 2 {
		fmt.Printf("%-12d", p)
		for _, a := range algos {
			res := stallsim.RunFanin(stallsim.FaninConfig{Threads: p, N: *n, Algorithm: a, Seed: 7})
			fmt.Printf("%12.3f", res.StallsPerOp())
		}
		fmt.Println()
	}
	fmt.Println("\nfetchadd grows linearly in P; dyn stays constant (Theorem 4.9).")

	// Live demo: one finish counter through both contention regimes.
	if _, err := repro.ParseAlgorithm(*algo, 1); err != nil {
		fmt.Fprintln(os.Stderr, "contention:", err)
		os.Exit(2)
	}
	rt := repro.NewRuntime(repro.WithWorkers(*workers), repro.WithMaxWorkers(*maxworkers), repro.WithCounter(*algo))
	defer rt.Close()
	pool := fmt.Sprintf("%d workers", rt.Workers())
	if *maxworkers > 0 {
		pool = fmt.Sprintf("%d..%d workers, elastic", rt.Workers(), *maxworkers)
	}
	fmt.Printf("\nlive runtime (%s, counter %q): phase-shift, %d prologue tasks then a %d-leaf storm\n",
		pool, *algo, *n/4, *n)

	// The canonical kernel (internal/workload.PhaseShift: calibrated
	// low-contention prologue, then the fan-in storm) rather than an
	// inline copy that could drift from what the benchmarks measure.
	before := rt.Stats().Promotions
	var res workload.Result
	if *maxworkers > 0 {
		// One computation is one injected root — no backlog, nothing to
		// spawn from. Run the storm on concurrent lanes so the elastic
		// pool has a burst to respond to.
		lanes := 2 * *maxworkers
		var wg sync.WaitGroup
		results := make([]workload.Result, lanes)
		for lane := 0; lane < lanes; lane++ {
			wg.Add(1)
			go func(lane int) {
				defer wg.Done()
				results[lane] = workload.PhaseShift(rt.Nested(), *n)
			}(lane)
		}
		wg.Wait()
		res = results[0]
	} else {
		res = workload.PhaseShift(rt.Nested(), *n)
	}
	fmt.Printf("%s\n", res)
	stats := rt.Stats()
	if *maxworkers > 0 {
		fmt.Printf("elastic pool: live=%d spawned=%d retired=%d (parked workers retire after idling)\n",
			stats.Workers, stats.SpawnedWorkers, stats.RetiredWorkers)
	}
	switch {
	case rt.Dag().Algorithm().Name() != "adaptive":
		fmt.Printf("counter %q is static — nothing to settle (vertices=%d steals=%d)\n",
			*algo, stats.Vertices, stats.Steals)
	case stats.Promotions > before:
		fmt.Printf("adaptive counter settled on the in-counter: the storm promoted %d counter(s)\n",
			stats.Promotions-before)
	default:
		fmt.Println("adaptive counter settled on fetch-and-add: no sustained contention observed (single core, or a polite schedule)")
	}
}
