// Contention demonstrates the paper's central theoretical claim
// (Theorems 4.8/4.9) in the very model it is stated in: it runs the
// fanin workload in the simulated shared-memory stall model and prints
// stalls per counter operation as the simulated processor count grows.
//
// The fetch-and-add cell shows the Θ(P) contention of the
// general-concurrency lower bounds; the paper's in-counter stays flat
// — amortized O(1) — because the structured (series-parallel)
// discipline lets each operation touch mostly-private SNZI nodes.
//
//	go run ./examples/contention
//	go run ./examples/contention -n 8192 -max 512
package main

import (
	"flag"
	"fmt"

	"repro/internal/stallsim"
)

func main() {
	var (
		n   = flag.Uint64("n", 2048, "fanin leaf count")
		max = flag.Int("max", 256, "largest simulated processor count")
	)
	flag.Parse()

	algos := []stallsim.SimAlgorithm{
		stallsim.FetchAdd{},
		stallsim.FixedSNZI{Depth: 4},
		stallsim.Dynamic{Threshold: 1},
	}

	fmt.Printf("fanin (n=%d) in the Fich et al. stall model — stalls per counter operation\n\n", *n)
	fmt.Printf("%-12s", "P")
	for _, a := range algos {
		fmt.Printf("%12s", a.Name())
	}
	fmt.Println()
	for p := 1; p <= *max; p *= 2 {
		fmt.Printf("%-12d", p)
		for _, a := range algos {
			res := stallsim.RunFanin(stallsim.FaninConfig{Threads: p, N: *n, Algorithm: a, Seed: 7})
			fmt.Printf("%12.3f", res.StallsPerOp())
		}
		fmt.Println()
	}
	fmt.Println("\nfetchadd grows linearly in P; dyn stays constant (Theorem 4.9).")
}
