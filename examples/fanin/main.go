// Fanin runs the paper's headline benchmark (Figure 6) interactively:
// n tasks created by recursive binary asyncs, all synchronizing at one
// finish block — the worst case for a dependency counter, since every
// task's creation and termination hits the same counter. It prints the
// per-core throughput and the size the in-counter's SNZI tree grew to
// (the artifact's nb_incounter_nodes).
//
//	go run ./examples/fanin -n 1048576 -algo dyn
//	go run ./examples/fanin -n 1048576 -algo fetchadd -procs 2
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	var (
		n       = flag.Uint64("n", 1<<20, "number of leaf tasks")
		algo    = flag.String("algo", "dyn", "dependency counter: fetchadd | dyn | snzi-D")
		workers = flag.Int("procs", 0, "workers (0 = GOMAXPROCS)")
		thresh  = flag.Uint64("threshold", 0, "grow threshold for dyn (0 = 25·procs)")
	)
	flag.Parse()

	threshold := *thresh
	if threshold == 0 {
		threshold = repro.DefaultThreshold(*workers)
	}
	alg, err := repro.ParseAlgorithm(*algo, threshold)
	if err != nil {
		log.Fatal(err)
	}
	rt := repro.NewRuntime(repro.WithWorkers(*workers), repro.WithAlgorithm(alg))
	defer rt.Close()

	res := workload.Fanin(rt.Nested(), *n)
	fmt.Printf("bench=fanin algo=%s procs=%d n=%d\n", *algo, rt.Workers(), *n)
	fmt.Printf("  time            %v\n", res.Elapsed)
	fmt.Printf("  counter ops     %d\n", res.CounterOps)
	fmt.Printf("  ops/sec/core    %.0f\n", res.OpsPerSecPerCore())
	fmt.Printf("  incounter nodes %d\n", res.FinalNodes)
	fmt.Printf("  steals          %d\n", rt.Stats().Steals)
}
