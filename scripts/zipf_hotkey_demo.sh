#!/usr/bin/env bash
# Demo of the batched counter frontend on the zipf hot-key workload:
# a quick ppopp17bench sweep (real runtime + 256-worker sim model)
# followed by the gated benchmark cells comparing the promoted
# unbatched spec (adaptive:0) against the batched frontend
# (adaptive:0:16). See EXPERIMENTS.md ("Zipf hot-key") for how to read
# the tables and scripts/threshold_sweep.sh for the full-size sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== quick batch-threshold sweep (table) =="
go run ./cmd/ppopp17bench -fig zipf -quick

echo
echo "== gated benchmark cells (shared-rmws/op is the ledger quotient) =="
go test -run=NONE -bench='BenchmarkZipfHotKey' -benchtime=10x -benchmem .
