#!/usr/bin/env bash
# Full-size batch-threshold sweep of the batched counter frontend
# (ppopp17bench -fig zipf): the real-runtime ledger table sweeps the
# batch threshold 1→128 on eager-promoted counters (adaptive:0:batch),
# and the 1024-worker sim table shows the modeled contention cliff
# moving with the threshold. Writes the per-figure artifact file too.
#
# Usage: scripts/threshold_sweep.sh [outdir]   (default: bench_out)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-bench_out}"
mkdir -p "$OUT"
go run ./cmd/ppopp17bench -fig zipf -format both -out "$OUT"
echo "artifact written under $OUT/"
